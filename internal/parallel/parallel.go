// Package parallel provides the bounded-concurrency primitives TradeFL's
// solver hot paths are built on: a worker pool sized from GOMAXPROCS,
// ordered fan-out/fan-in helpers, context-aware variants, and an atomic
// float64 maximum used as the shared incumbent bound of branch-and-bound
// searches.
//
// Determinism contract: every helper assigns work by index and returns (or
// writes) results in index order, so callers that reduce over the results
// in index order observe exactly the serial iteration order regardless of
// worker count or scheduling. Workers pull indices from a shared atomic
// counter (dynamic load balancing), which is safe because result slots are
// disjoint per index.
package parallel

import (
	"context"
	"math"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"tradefl/internal/obs"
)

// Pool telemetry. Updates happen once per fan-out (never per index), so a
// fine-grained fan-out like a blocked tensor kernel pays four atomic
// operations total, not one per row.
var (
	mFanouts = obs.NewCounter("tradefl_pool_fanouts_total", "parallel fan-outs dispatched (For/ForCtx/Map with >1 worker)")
	mTasks   = obs.NewCounter("tradefl_pool_tasks_total", "work items processed by parallel fan-outs")
	mActive  = obs.NewGauge("tradefl_pool_workers_active", "worker goroutines currently inside a fan-out")
	mQueued  = obs.NewGauge("tradefl_pool_queue_depth", "work items admitted to in-flight fan-outs")
	mBusySec = obs.NewGauge("tradefl_pool_worker_busy_seconds_total", "cumulative worker-seconds spent inside fan-outs (utilization = rate / workers)")
	mFanSec  = obs.NewHistogram("tradefl_pool_fanout_seconds", "wall time of one parallel fan-out", obs.ExpBuckets(1e-6, 4, 12))
)

// track records one parallel fan-out of n items over `workers` goroutines;
// the returned func finishes the bookkeeping.
func track(workers, n int) func() {
	mFanouts.Inc()
	mTasks.Add(int64(n))
	mActive.Add(float64(workers))
	mQueued.Add(float64(n))
	start := time.Now()
	return func() {
		dt := time.Since(start).Seconds()
		mActive.Add(float64(-workers))
		mQueued.Add(float64(-n))
		mBusySec.Add(dt * float64(workers))
		mFanSec.Observe(dt)
	}
}

// defaultWorkers overrides the process-wide default worker count when
// positive; 0 means "use GOMAXPROCS". Set from CLI flags (-workers).
var defaultWorkers atomic.Int64

// SetDefault sets the process-wide default worker count used when a
// Workers option is left at zero. n ≤ 0 restores the GOMAXPROCS default.
func SetDefault(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// Default returns the process-wide default worker count: the value set by
// SetDefault, or runtime.GOMAXPROCS(0).
func Default() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// Resolve maps a Workers option value to an effective worker count:
// 0 → Default(), negative → 1.
func Resolve(workers int) int {
	switch {
	case workers == 0:
		return Default()
	case workers < 0:
		return 1
	default:
		return workers
	}
}

// PhaseLabel is the pprof label key worker goroutines are tagged with, so
// CPU profiles (`go tool pprof -tagfocus`) attribute samples to solver
// phases (dbr scan, pruned/traversal master kernels, fleet batch).
const PhaseLabel = "tradefl_phase"

// labeled wraps a worker body in runtime/pprof.Do under PhaseLabel=label;
// an empty label runs the body directly (no context or label-map cost).
func labeled(label string, body func()) {
	if label == "" {
		body()
		return
	}
	pprof.Do(context.Background(), pprof.Labels(PhaseLabel, label), func(context.Context) { body() })
}

// For runs fn(i) for every i in [0, n), using at most workers goroutines.
// workers ≤ 1 or n ≤ 1 runs inline on the calling goroutine in index
// order. It returns when every call has completed.
func For(workers, n int, fn func(i int)) { ForLabeled("", workers, n, fn) }

// ForLabeled is For with worker goroutines carrying the pprof phase label.
// The inline path (workers ≤ 1) skips labeling: it runs on the caller's
// goroutine, whose labels belong to the caller.
func ForLabeled(label string, workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	defer track(workers, n)()
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			labeled(label, func() {
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					fn(i)
				}
			})
		}()
	}
	wg.Wait()
}

// ForCtx is For with cooperative cancellation: workers stop picking up new
// indices once ctx is cancelled or any fn returns an error. It returns the
// error of the lowest index that failed (deterministic), or ctx.Err() when
// cancelled with no fn error. Indices already started always run to
// completion.
func ForCtx(ctx context.Context, workers, n int, fn func(i int) error) error {
	return ForCtxLabeled(ctx, "", workers, n, fn)
}

// ForCtxLabeled is ForCtx with worker goroutines carrying the pprof phase
// label (see ForLabeled).
func ForCtxLabeled(ctx context.Context, label string, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	defer track(workers, n)()
	var (
		next    atomic.Int64
		stopped atomic.Bool
		mu      sync.Mutex
		firstI  = n
		firstE  error
	)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			labeled(label, func() {
				for !stopped.Load() && ctx.Err() == nil {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					if err := fn(i); err != nil {
						mu.Lock()
						if i < firstI {
							firstI, firstE = i, err
						}
						mu.Unlock()
						stopped.Store(true)
						return
					}
				}
			})
		}()
	}
	wg.Wait()
	if firstE != nil {
		return firstE
	}
	return ctx.Err()
}

// Map runs fn(i) for every i in [0, n) under at most workers goroutines
// and returns the results in index order.
func Map[T any](workers, n int, fn func(i int) T) []T {
	return MapInto(nil, workers, n, fn)
}

// MapLabeled is Map with worker goroutines carrying the pprof phase label.
func MapLabeled[T any](label string, workers, n int, fn func(i int) T) []T {
	var dst []T
	if cap(dst) < n {
		dst = make([]T, n)
	}
	dst = dst[:n]
	ForLabeled(label, workers, n, func(i int) { dst[i] = fn(i) })
	return dst
}

// MapInto is Map writing into caller-provided storage: dst is resized (or
// freshly allocated when its capacity is short) to n entries and returned.
// Steady-state callers that reuse dst across fan-outs allocate nothing for
// the result slice. Slots are disjoint per index, so the determinism
// contract is unchanged.
func MapInto[T any](dst []T, workers, n int, fn func(i int) T) []T {
	if cap(dst) < n {
		dst = make([]T, n)
	}
	dst = dst[:n]
	For(workers, n, func(i int) { dst[i] = fn(i) })
	return dst
}

// MaxFloat64 is an atomic running maximum over float64 values, used as the
// shared incumbent bound of parallel branch-and-bound searches. The zero
// value is ready to use and loads as -Inf.
//
// Values are stored under a monotone encoding (sign-flipped IEEE bits) so
// float ordering matches uint64 ordering and the zero bit pattern sorts
// below every encoded float — the zero value needs no initialization.
type MaxFloat64 struct {
	enc atomic.Uint64
}

// encodeFloat maps a float64 to a uint64 whose unsigned ordering matches
// the float ordering, with every encoding strictly positive.
func encodeFloat(v float64) uint64 {
	b := math.Float64bits(v)
	if b&(1<<63) != 0 {
		return ^b // negative: reverse order
	}
	return b | 1<<63
}

// Load returns the current maximum (-Inf before any Update).
func (m *MaxFloat64) Load() float64 {
	e := m.enc.Load()
	if e == 0 {
		return math.Inf(-1)
	}
	if e&(1<<63) != 0 {
		return math.Float64frombits(e &^ (1 << 63))
	}
	return math.Float64frombits(^e)
}

// Update raises the maximum to v if v is larger. It reports whether v
// became the new maximum. NaN is ignored.
func (m *MaxFloat64) Update(v float64) bool {
	if math.IsNaN(v) {
		return false
	}
	e := encodeFloat(v)
	for {
		old := m.enc.Load()
		if e <= old {
			return false
		}
		if m.enc.CompareAndSwap(old, e) {
			return true
		}
	}
}
