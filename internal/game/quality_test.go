package game

import (
	"math"
	"testing"

	"tradefl/internal/randx"
)

func TestQualityValidation(t *testing.T) {
	cfg := testConfig(t, 1)
	cfg.Orgs[0].Quality = 1.5
	if err := cfg.Validate(); err == nil {
		t.Error("quality > 1 accepted")
	}
	cfg.Orgs[0].Quality = -0.1
	if err := cfg.Validate(); err == nil {
		t.Error("negative quality accepted")
	}
	cfg.Orgs[0].Quality = 0 // zero value = default 1
	if err := cfg.Validate(); err != nil {
		t.Errorf("zero-value quality rejected: %v", err)
	}
}

func TestQualityDefaultReproducesBaseModel(t *testing.T) {
	base := testConfig(t, 3)
	explicit := testConfig(t, 3)
	for i := range explicit.Orgs {
		explicit.Orgs[i].Quality = 1
	}
	src := randx.New(4)
	p := randomProfile(base, src)
	for i := range p {
		if base.Payoff(i, p) != explicit.Payoff(i, p) {
			t.Fatal("explicit quality 1 changed payoffs")
		}
	}
	if base.Potential(p) != explicit.Potential(p) {
		t.Fatal("explicit quality 1 changed potential")
	}
}

func TestQualityScalesOmegaAndCredit(t *testing.T) {
	cfg := testConfig(t, 5)
	cfg.Orgs[0].Quality = 0.5
	src := randx.New(6)
	p := randomProfile(cfg, src)
	// Ω contribution halves.
	if got, want := cfg.OmegaScale(0), 0.5*cfg.Orgs[0].Samples; math.Abs(got-want) > 1e-9 {
		t.Errorf("OmegaScale = %v, want %v", got, want)
	}
	// Redistribution credit halves while energy stays on raw volume.
	if got, want := cfg.DataCredit(0), 0.5*cfg.Orgs[0].DataBits; math.Abs(got-want) > 1e-9 {
		t.Errorf("DataCredit = %v, want %v", got, want)
	}
	full := testConfig(t, 5)
	if cfg.Energy(0, p[0]) != full.Energy(0, p[0]) {
		t.Error("quality changed the energy cost (it must not)")
	}
	xLow := cfg.ContributionIndex(0, p[0])
	xFull := full.ContributionIndex(0, p[0])
	if xLow >= xFull {
		t.Errorf("low-quality index %v not below full-quality %v", xLow, xFull)
	}
}

// TestQualityPreservesPotentialIdentity: the weighted-potential identity
// must hold with heterogeneous quality.
func TestQualityPreservesPotentialIdentity(t *testing.T) {
	cfg := testConfig(t, 8)
	src := randx.New(9)
	for i := range cfg.Orgs {
		cfg.Orgs[i].Quality = src.Uniform(0.3, 1)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 100; trial++ {
		p := randomProfile(cfg, src)
		i := src.Intn(cfg.N())
		q := p.Clone()
		o := cfg.Orgs[i]
		f := o.CPULevels[src.Intn(len(o.CPULevels))]
		lo, hi, ok := cfg.FeasibleD(i, f)
		if !ok {
			continue
		}
		q[i] = Strategy{D: src.Uniform(lo, hi), F: f}
		if err := cfg.PotentialIdentityError(i, p, q); err > 1e-6 {
			t.Fatalf("trial %d: identity error %v under quality weights", trial, err)
		}
	}
}

func TestQualityBudgetBalance(t *testing.T) {
	cfg := testConfig(t, 10)
	src := randx.New(11)
	for i := range cfg.Orgs {
		cfg.Orgs[i].Quality = src.Uniform(0.2, 1)
	}
	p := randomProfile(cfg, src)
	if bb := cfg.CheckBudgetBalance(p); math.Abs(bb) > 1e-6 {
		t.Errorf("ΣR_i = %v with quality weights, want 0", bb)
	}
}
