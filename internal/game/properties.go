package game

import (
	"fmt"
	"math"
)

// NashReport is the result of a Nash-equilibrium audit of a profile.
type NashReport struct {
	// IsNash is true when no organization has a profitable unilateral
	// deviation larger than Tolerance on the audited grid.
	IsNash bool
	// MaxRegret is the largest payoff improvement any organization could
	// gain by deviating (0 when none).
	MaxRegret float64
	// Deviator is the index of the organization with the largest regret,
	// or -1 when none.
	Deviator int
	// Tolerance is the regret threshold used.
	Tolerance float64
}

func (r NashReport) String() string {
	if r.IsNash {
		return fmt.Sprintf("nash (max regret %.3g ≤ tol %.3g)", r.MaxRegret, r.Tolerance)
	}
	return fmt.Sprintf("not nash: org %d can gain %.6g (> tol %.3g)", r.Deviator, r.MaxRegret, r.Tolerance)
}

// CheckNash audits whether π is a (grid-)Nash equilibrium of the coopetition
// game: for every organization it scans all CPU levels and gridRes data
// fractions across the feasible interval and measures the best payoff
// improvement over C_i(π). Definition 6 of the paper.
//
// When the incremental engine is on (the process default) the unilateral
// deviations are evaluated through a DeltaEvaluator bound once to p; the
// evaluator is byte-identical to Config.Payoff, so the report is the same
// either way — only the constant factor per deviation changes.
func (c *Config) CheckNash(p Profile, gridRes int, tol float64) NashReport {
	if gridRes < 2 {
		gridRes = 2
	}
	report := NashReport{IsNash: true, Deviator: -1, Tolerance: tol}
	var payoffAt func(i int) float64
	var payoffWith func(i int, s Strategy) float64
	if IncrementalDefault() {
		ev := NewDeltaEvaluator(c)
		ev.Bind(p)
		payoffAt = ev.Payoff
		payoffWith = ev.PayoffWith
	} else {
		work := p.Clone()
		payoffAt = func(i int) float64 { return c.Payoff(i, p) }
		payoffWith = func(i int, s Strategy) float64 {
			orig := work[i]
			work[i] = s
			v := c.Payoff(i, work)
			work[i] = orig
			return v
		}
	}
	for i := range c.Orgs {
		base := payoffAt(i)
		for _, f := range c.Orgs[i].CPULevels {
			lo, hi, ok := c.FeasibleD(i, f)
			if !ok {
				continue
			}
			for k := 0; k < gridRes; k++ {
				d := lo + (hi-lo)*float64(k)/float64(gridRes-1)
				regret := payoffWith(i, Strategy{D: d, F: f}) - base
				if regret > report.MaxRegret {
					report.MaxRegret = regret
					report.Deviator = i
				}
			}
		}
	}
	report.IsNash = report.MaxRegret <= tol
	mNashChecks.Inc()
	mNashRegret.Set(report.MaxRegret)
	if !report.IsNash {
		mNashViolations.Inc()
	}
	return report
}

// CheckBudgetBalance returns Σ_i R_i(π). Definition 5 requires the sum to
// be zero; with a symmetric ρ the pairwise transfers cancel exactly, so any
// residual beyond floating-point noise indicates an asymmetric matrix.
func (c *Config) CheckBudgetBalance(p Profile) float64 {
	var sum float64
	for i := range c.Orgs {
		sum += c.Redistribution(i, p)
	}
	return sum
}

// CheckIndividualRationality reports whether every organization's payoff at
// π is nonnegative (Definition 3), returning the most negative payoff and
// the organization that earns it (-1 if all are nonnegative).
func (c *Config) CheckIndividualRationality(p Profile) (ok bool, worst float64, org int) {
	worst = math.Inf(1)
	org = -1
	for i, v := range c.Payoffs(p) {
		if v < worst {
			worst = v
			org = i
		}
	}
	if worst >= 0 {
		return true, worst, -1
	}
	return false, worst, org
}

// PotentialIdentityError measures how exactly the weighted-potential
// identity of Theorem 1 holds for a unilateral deviation of organization i
// from p to q (q must differ from p only at index i):
//
//	err = | w_i·[U(p) − U(q)] − [C_i(p) − C_i(q)] |,
//
// where w_i is the effective weight ((1−α)·z_i; z_i in the base model).
// A correct implementation keeps this at floating-point noise for every
// deviation, which the property tests assert.
func (c *Config) PotentialIdentityError(i int, p, q Profile) float64 {
	wi := c.EffectiveWeight(i)
	du := c.Potential(p) - c.Potential(q)
	dc := c.Payoff(i, p) - c.Payoff(i, q)
	return math.Abs(wi*du - dc)
}
