package game

import (
	"math"
	"reflect"

	"tradefl/internal/accuracy"
)

// This file implements the value signature used to key warm solver state
// (gbd.SolveWarm, the fleet engine's per-instance caches, the pooled DBR
// engines). A signature is an FNV-1a hash over every numeric field of the
// config, so warm state keyed on (pointer, signature) survives repeated
// solves of an unchanged instance but is invalidated the moment any field
// is mutated in place — the access pattern of campaign.drift, which mutates
// the epoch config between solves.
//
// The Accuracy model is an interface and is deliberately excluded from the
// hash; pair Signature with SameModel to cover it.

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvFloat(h uint64, v float64) uint64 {
	b := math.Float64bits(v)
	for i := 0; i < 8; i++ {
		h ^= b & 0xff
		h *= fnvPrime
		b >>= 8
	}
	return h
}

func fnvInt(h uint64, v int) uint64 {
	return fnvFloat(h, float64(v))
}

func fnvBool(h uint64, v bool) uint64 {
	if v {
		return fnvInt(h, 1)
	}
	return fnvInt(h, 0)
}

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// Signature returns a value hash of the config: every numeric field of the
// organizations, the competition matrix, and the game scalars. Two configs
// with identical field values share a signature; mutating any hashed field
// in place changes it. The Accuracy model is not hashed (interfaces have no
// canonical byte representation) — callers keying warm state must pair the
// signature with a SameModel identity check.
func (c *Config) Signature() uint64 {
	h := uint64(fnvOffset)
	h = fnvInt(h, len(c.Orgs))
	for i := range c.Orgs {
		o := &c.Orgs[i]
		h = fnvString(h, o.Name)
		h = fnvFloat(h, o.DataBits)
		h = fnvFloat(h, o.Samples)
		h = fnvFloat(h, o.Profitability)
		h = fnvFloat(h, o.Quality)
		h = fnvInt(h, len(o.CPULevels))
		for _, f := range o.CPULevels {
			h = fnvFloat(h, f)
		}
		h = fnvFloat(h, o.Comm.DownloadTime)
		h = fnvFloat(h, o.Comm.UploadTime)
		h = fnvFloat(h, o.Comm.CyclesPerBit)
		h = fnvFloat(h, o.Comm.DownloadPower)
		h = fnvFloat(h, o.Comm.UploadPower)
		h = fnvFloat(h, o.Comm.Kappa)
	}
	for i := range c.Rho {
		for _, v := range c.Rho[i] {
			h = fnvFloat(h, v)
		}
	}
	h = fnvFloat(h, c.Gamma)
	h = fnvFloat(h, c.Lambda)
	h = fnvFloat(h, c.EnergyWeight)
	h = fnvFloat(h, c.DMin)
	h = fnvFloat(h, c.Deadline)
	h = fnvBool(h, c.OmegaInSamples)
	h = fnvFloat(h, c.Personal.Alpha)
	h = fnvFloat(h, c.Personal.LocalBoost)
	return h
}

// SameModel reports whether two accuracy models are interchangeable for
// warm-state reuse: same dynamic type and equal values when the type is
// comparable, or the same underlying object for non-comparable kinds
// (slices, maps, funcs). A conservative false is always safe — it only
// forces a cold solve.
func SameModel(a, b accuracy.Model) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	va, vb := reflect.ValueOf(a), reflect.ValueOf(b)
	if va.Type() != vb.Type() {
		return false
	}
	if va.Comparable() {
		return a == b
	}
	switch va.Kind() {
	case reflect.Slice, reflect.Map, reflect.Func:
		return va.Pointer() == vb.Pointer()
	}
	return false
}
