package game

import (
	"math"
	"testing"

	"tradefl/internal/randx"
)

// deltaTestConfigs yields game instances across the dimensions that change
// the payoff expression tree: size, competition intensity and the
// personalization extension (α > 0 switches the revenue and damage forms).
func deltaTestConfigs(t *testing.T) []*Config {
	t.Helper()
	var cfgs []*Config
	for _, gen := range []GenOptions{
		{Seed: 1},
		{Seed: 7, N: 4},
		{Seed: 11, N: 16, Mu: 0.9},
		{Seed: 3, N: 8, CPUSteps: 5},
	} {
		cfg, err := DefaultConfig(gen)
		if err != nil {
			t.Fatalf("DefaultConfig(%+v): %v", gen, err)
		}
		cfgs = append(cfgs, cfg)

		pers, err := DefaultConfig(gen)
		if err != nil {
			t.Fatalf("DefaultConfig(%+v): %v", gen, err)
		}
		pers.Personal = Personalization{Alpha: 0.3, LocalBoost: 1.5}
		cfgs = append(cfgs, pers)
	}
	return cfgs
}

// randomStrategy draws a feasible deviation for organization i.
func randomStrategy(cfg *Config, i int, src *randx.Source) (Strategy, bool) {
	levels := cfg.Orgs[i].CPULevels
	f := levels[src.Intn(len(levels))]
	lo, hi, ok := cfg.FeasibleD(i, f)
	if !ok {
		return Strategy{}, false
	}
	return Strategy{D: src.Uniform(lo, hi), F: f}, true
}

// TestDeltaEvaluatorMatchesNaive is the core exactness contract: every
// PayoffWith result is bit-for-bit equal to Config.Payoff on the substituted
// profile, across configs, profiles and single-coordinate mutations.
func TestDeltaEvaluatorMatchesNaive(t *testing.T) {
	for _, cfg := range deltaTestConfigs(t) {
		src := randx.New(42)
		ev := NewDeltaEvaluator(cfg)
		for trial := 0; trial < 20; trial++ {
			p := randomProfile(cfg, src)
			ev.Bind(p)
			work := p.Clone()
			for i := 0; i < cfg.N(); i++ {
				if got, want := ev.Payoff(i), cfg.Payoff(i, p); math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("Payoff(%d) = %x, naive %x (n=%d α=%v)",
						i, math.Float64bits(got), math.Float64bits(want), cfg.N(), cfg.Personal.Alpha)
				}
				for dev := 0; dev < 5; dev++ {
					s, ok := randomStrategy(cfg, i, src)
					if !ok {
						continue
					}
					work[i] = s
					got, want := ev.PayoffWith(i, s), cfg.Payoff(i, work)
					work[i] = p[i]
					if math.Float64bits(got) != math.Float64bits(want) {
						t.Fatalf("PayoffWith(%d, %+v) = %x, naive %x (n=%d α=%v)",
							i, s, math.Float64bits(got), math.Float64bits(want), cfg.N(), cfg.Personal.Alpha)
					}
				}
			}
		}
	}
}

// TestDeltaEvaluatorUpdate walks a random sequence of single-coordinate
// Update moves (the best-response access pattern) and checks the evaluator
// stays bit-identical to a naive evaluation of the mutated profile.
func TestDeltaEvaluatorUpdate(t *testing.T) {
	for _, cfg := range deltaTestConfigs(t) {
		src := randx.New(99)
		p := randomProfile(cfg, src)
		ev := NewDeltaEvaluator(cfg)
		ev.Bind(p)
		cur := p.Clone()
		for move := 0; move < 50; move++ {
			i := src.Intn(cfg.N())
			s, ok := randomStrategy(cfg, i, src)
			if !ok {
				continue
			}
			ev.Update(i, s)
			cur[i] = s
			for j := 0; j < cfg.N(); j++ {
				got, want := ev.Payoff(j), cfg.Payoff(j, cur)
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("move %d: Payoff(%d) = %x, naive %x", move, j, math.Float64bits(got), math.Float64bits(want))
				}
			}
		}
		if got := ev.Bound(); len(got) != len(cur) {
			t.Fatalf("Bound() has %d entries, want %d", len(got), len(cur))
		} else {
			for i := range cur {
				if got[i] != cur[i] {
					t.Fatalf("Bound()[%d] = %+v, want %+v", i, got[i], cur[i])
				}
			}
		}
	}
}

// TestDeltaEvaluatorSelfCheck exercises the runtime fallback: with the
// cross-check enabled results are unchanged and no mismatch is recorded.
func TestDeltaEvaluatorSelfCheck(t *testing.T) {
	cfg := testConfig(t, 5)
	src := randx.New(5)
	p := randomProfile(cfg, src)

	plain := NewDeltaEvaluator(cfg)
	plain.Bind(p)
	checked := NewDeltaEvaluator(cfg)
	checked.SetSelfCheck(true)
	checked.Bind(p)

	for i := 0; i < cfg.N(); i++ {
		for dev := 0; dev < 10; dev++ {
			s, ok := randomStrategy(cfg, i, src)
			if !ok {
				continue
			}
			a, b := plain.PayoffWith(i, s), checked.PayoffWith(i, s)
			if math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("self-check changed the result: %x vs %x", math.Float64bits(a), math.Float64bits(b))
			}
		}
	}
	if n := checked.Mismatches(); n != 0 {
		t.Fatalf("self-check recorded %d mismatches, want 0", n)
	}
	if checked.Config() != cfg {
		t.Fatalf("Config() does not return the bound config")
	}
}

// TestDeltaEvaluatorResetReuses verifies Reset rebinds without growing and
// that a reused evaluator is still exact for the new config.
func TestDeltaEvaluatorResetReuses(t *testing.T) {
	big := testConfig(t, 1)
	small, err := DefaultConfig(GenOptions{Seed: 2, N: 4})
	if err != nil {
		t.Fatalf("DefaultConfig: %v", err)
	}
	ev := NewDeltaEvaluator(big)
	ev.Reset(small)
	src := randx.New(17)
	p := randomProfile(small, src)
	ev.Bind(p)
	for i := 0; i < small.N(); i++ {
		got, want := ev.Payoff(i), small.Payoff(i, p)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("after Reset: Payoff(%d) = %x, naive %x", i, math.Float64bits(got), math.Float64bits(want))
		}
	}
}

var deltaSink float64

// TestDeltaEvaluatorZeroAlloc pins the steady-state query cost: a bound
// evaluator answers PayoffWith without allocating.
func TestDeltaEvaluatorZeroAlloc(t *testing.T) {
	cfg := testConfig(t, 1)
	src := randx.New(3)
	p := randomProfile(cfg, src)
	ev := NewDeltaEvaluator(cfg)
	ev.Bind(p)
	s, ok := randomStrategy(cfg, 2, src)
	if !ok {
		t.Fatal("no feasible deviation for org 2")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		deltaSink = ev.PayoffWith(2, s)
	})
	if allocs != 0 {
		t.Fatalf("PayoffWith allocates %v per query, want 0", allocs)
	}
}

// TestCheckNashIncrementalEquivalence asserts the CheckNash report is
// bit-identical whether the deviations are evaluated through the
// DeltaEvaluator or the naive path.
func TestCheckNashIncrementalEquivalence(t *testing.T) {
	defer SetIncrementalDefault(true)
	for _, cfg := range deltaTestConfigs(t) {
		src := randx.New(8)
		p := randomProfile(cfg, src)
		SetIncrementalDefault(true)
		on := cfg.CheckNash(p, 25, 1e-2)
		SetIncrementalDefault(false)
		off := cfg.CheckNash(p, 25, 1e-2)
		if on.IsNash != off.IsNash || on.Deviator != off.Deviator ||
			math.Float64bits(on.MaxRegret) != math.Float64bits(off.MaxRegret) {
			t.Fatalf("CheckNash diverged: incremental %+v vs naive %+v", on, off)
		}
	}
}

// FuzzDeltaEvaluator fuzzes the exactness contract: for a random instance,
// profile and single-coordinate mutation, the incremental payoff must match
// the naive evaluator bit-for-bit. The committed seed corpus in
// testdata/fuzz covers both model variants and the extreme grid points.
func FuzzDeltaEvaluator(f *testing.F) {
	f.Add(int64(1), int64(0), 0.0)
	f.Add(int64(7), int64(3), 0.5)
	f.Add(int64(11), int64(42), 1.0)
	f.Add(int64(-5), int64(9), 0.25)
	f.Fuzz(func(t *testing.T, seed, pick int64, dFrac float64) {
		n := 2 + int(uint64(seed)%15) // 2..16 organizations
		gen := GenOptions{Seed: seed, N: n}
		cfg, err := DefaultConfig(gen)
		if err != nil {
			t.Skip()
		}
		if seed%2 == 0 {
			cfg.Personal = Personalization{Alpha: 0.25, LocalBoost: 2}
		}
		src := randx.New(seed ^ 0x5DEECE66D)
		p := randomProfile(cfg, src)
		i := int(uint64(pick) % uint64(cfg.N()))
		levels := cfg.Orgs[i].CPULevels
		fv := levels[int(uint64(pick)>>8)%len(levels)]
		lo, hi, ok := cfg.FeasibleD(i, fv)
		if !ok {
			t.Skip()
		}
		if math.IsNaN(dFrac) || math.IsInf(dFrac, 0) {
			dFrac = 0
		}
		dFrac = math.Abs(dFrac)
		if dFrac > 1 {
			dFrac = math.Mod(dFrac, 1)
		}
		s := Strategy{D: lo + (hi-lo)*dFrac, F: fv}

		ev := NewDeltaEvaluator(cfg)
		ev.Bind(p)
		work := p.Clone()
		work[i] = s
		got, want := ev.PayoffWith(i, s), cfg.Payoff(i, work)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("PayoffWith(%d, %+v) = %x, naive %x (seed=%d n=%d)",
				i, s, math.Float64bits(got), math.Float64bits(want), seed, n)
		}
		// After committing the move, every organization's payoff must match
		// the naive evaluation of the mutated profile.
		ev.Update(i, s)
		for j := 0; j < cfg.N(); j++ {
			got, want := ev.Payoff(j), cfg.Payoff(j, work)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("after Update: Payoff(%d) = %x, naive %x (seed=%d n=%d)",
					j, math.Float64bits(got), math.Float64bits(want), seed, n)
			}
		}
	})
}
