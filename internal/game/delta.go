package game

import "tradefl/internal/accuracy"

// DeltaEvaluator answers "what is organization i's payoff when its strategy
// is replaced by x, everyone else unchanged?" in O(N) instead of the O(N²)
// a fresh Config.Payoff costs. It is the core of the incremental evaluation
// engine: best-response scans ask exactly this question hundreds of times
// per sweep against a profile that changes one coordinate at a time.
//
// # Exactness contract
//
// Every result is byte-identical to Config.Payoff on the substituted
// profile — not merely close. The evaluator achieves this by replicating
// the naive evaluator's floating-point expression trees exactly and caching
// only operands, never reassociating:
//
//   - cached static factors (scale_i, dmgCoef_i, contribution-index
//     operands) are each computed by the same expression the naive path
//     evaluates, so their bits agree;
//   - Ω is re-folded left-to-right over the full profile on every query
//     (O(N)); an O(1) "subtract old, add new" update would change the
//     partial-sum sequence and leak one-ulp drift. This is why the query
//     cost is O(N), not O(1) — O(N) is the floor for bit-exact results;
//   - P(Ω) is evaluated once and reused for both the revenue and the
//     damage gain, exactly as the naive path computes the same value twice;
//   - the redistribution fold visits every j in index order, including the
//     j = i zero term the naive Transfer contributes.
//
// The fuzz and equivalence tests assert bit-equality against Config.Payoff
// across random configs, profiles and single-coordinate mutations, and
// SetSelfCheck enables a runtime fallback path that cross-checks every
// query against the naive evaluator and returns the naive bits on any
// mismatch (it never fires; it exists as a deployment safety net).
//
// A DeltaEvaluator is not safe for concurrent mutation (Bind/Update), but
// concurrent PayoffWith queries against a bound evaluator are read-only and
// race-free — the parallel best-response scan relies on this.
type DeltaEvaluator struct {
	cfg *Config
	acc accuracy.Model

	// Static per-organization caches (valid for the config's lifetime).
	scale   []float64 // omegaScale(i)
	q       []float64 // quality()
	bits    []float64 // DataBits
	prof    []float64 // Profitability
	dmgCoef []float64 // (1−α)·Σ_j ρ_ij·p_j — the damage factor of Eq. (7)

	gamma, lambda, energyWeight float64
	alpha, oneMinusAlpha, boost float64
	personal                    bool

	// Profile-bound caches (valid until the next Bind/Update).
	p  Profile   // private copy of the bound profile
	xs []float64 // ContributionIndex(j, p[j]) for every j

	selfCheck  bool
	work       Profile // scratch for the self-check fallback
	mismatches int64
}

// NewDeltaEvaluator builds an evaluator for cfg. The config must remain
// unmodified for the evaluator's lifetime; call Reset after changing it.
func NewDeltaEvaluator(cfg *Config) *DeltaEvaluator {
	ev := &DeltaEvaluator{}
	ev.Reset(cfg)
	return ev
}

// Reset rebinds the evaluator to cfg, re-deriving every static cache. It
// reuses the existing backing arrays when the organization count allows,
// so pooled evaluators reset without allocating.
func (ev *DeltaEvaluator) Reset(cfg *Config) {
	n := cfg.N()
	ev.cfg = cfg
	ev.acc = cfg.Accuracy
	if cap(ev.scale) < n {
		ev.scale = make([]float64, n)
		ev.q = make([]float64, n)
		ev.bits = make([]float64, n)
		ev.prof = make([]float64, n)
		ev.dmgCoef = make([]float64, n)
		ev.xs = make([]float64, n)
		ev.p = make(Profile, n)
		ev.work = make(Profile, n)
	}
	ev.scale = ev.scale[:n]
	ev.q = ev.q[:n]
	ev.bits = ev.bits[:n]
	ev.prof = ev.prof[:n]
	ev.dmgCoef = ev.dmgCoef[:n]
	ev.xs = ev.xs[:n]
	ev.p = ev.p[:n]
	ev.work = ev.work[:n]
	ev.gamma = cfg.Gamma
	ev.lambda = cfg.Lambda
	ev.energyWeight = cfg.EnergyWeight
	ev.alpha = cfg.Personal.Alpha
	ev.oneMinusAlpha = 1 - cfg.Personal.Alpha
	ev.boost = cfg.Personal.boost()
	ev.personal = cfg.Personal.enabled()
	for i := 0; i < n; i++ {
		ev.scale[i] = cfg.omegaScale(i)
		ev.q[i] = cfg.Orgs[i].quality()
		ev.bits[i] = cfg.Orgs[i].DataBits
		ev.prof[i] = cfg.Orgs[i].Profitability
		// Same fold Config.Damage performs, then the same (1−α)·sum product.
		var sum float64
		for j := range cfg.Orgs {
			sum += cfg.Rho[i][j] * cfg.Orgs[j].Profitability
		}
		ev.dmgCoef[i] = (1 - cfg.Personal.Alpha) * sum
	}
}

// Config returns the bound game configuration.
func (ev *DeltaEvaluator) Config() *Config { return ev.cfg }

// SetSelfCheck toggles the exact-equality fallback path: every query is
// cross-checked against the naive Config.Payoff, the naive bits win on any
// disagreement, and Mismatches counts the disagreements (always zero unless
// the replication invariant is broken). Costs O(N²) per query; meant for
// tests and belt-and-braces deployments, not hot paths.
func (ev *DeltaEvaluator) SetSelfCheck(on bool) { ev.selfCheck = on }

// Mismatches reports how many self-checked queries disagreed with the
// naive evaluator since Reset. A nonzero value is a bug.
func (ev *DeltaEvaluator) Mismatches() int64 { return ev.mismatches }

// Bind points the evaluator at profile p (copied; the caller's slice is not
// retained) and refreshes the per-organization aggregate caches in O(N).
func (ev *DeltaEvaluator) Bind(p Profile) {
	copy(ev.p, p)
	for j := range ev.p {
		ev.xs[j] = ev.contribution(j, ev.p[j])
	}
}

// Update replaces the bound strategy of organization i in O(1), keeping the
// aggregate caches consistent. Use it after a best-response move instead of
// re-binding the whole profile.
func (ev *DeltaEvaluator) Update(i int, s Strategy) {
	ev.p[i] = s
	ev.xs[i] = ev.contribution(i, s)
}

// Bound returns the evaluator's private copy of the bound profile (read
// only; mutate through Update).
func (ev *DeltaEvaluator) Bound() Profile { return ev.p }

// contribution replicates Config.ContributionIndex bit-for-bit from cached
// operands: q_i·d_i·s_i + λ·f_i with the same association order.
func (ev *DeltaEvaluator) contribution(i int, s Strategy) float64 {
	return ev.q[i]*s.D*ev.bits[i] + ev.lambda*s.F
}

// Payoff returns organization i's payoff at the bound profile,
// byte-identical to Config.Payoff(i, bound profile).
func (ev *DeltaEvaluator) Payoff(i int) float64 {
	return ev.PayoffWith(i, ev.p[i])
}

// PayoffWith returns organization i's payoff when its bound strategy is
// replaced by s (other organizations unchanged), byte-identical to
// Config.Payoff(i, p') where p' is the substituted profile. O(N).
func (ev *DeltaEvaluator) PayoffWith(i int, s Strategy) float64 {
	val := ev.payoffWith(i, s)
	if ev.selfCheck {
		copy(ev.work, ev.p)
		ev.work[i] = s
		if naive := ev.cfg.Payoff(i, ev.work); naive != val {
			ev.mismatches++
			return naive
		}
	}
	return val
}

func (ev *DeltaEvaluator) payoffWith(i int, s Strategy) float64 {
	// Ω: the same left-to-right index-order fold Config.Omega performs,
	// with organization i's term substituted in place.
	var omega float64
	for j := range ev.p {
		d := ev.p[j].D
		if j == i {
			d = s.D
		}
		omega += d * ev.scale[j]
	}
	perf := ev.acc.Value(omega)

	// Revenue: p_i·P (base) or p_i·[(1−α)·P + α·P_loc] (personalization),
	// reusing perf for the global component exactly as the naive path
	// evaluates the same Ω twice.
	var revenue float64
	if ev.personal {
		local := ev.acc.Value(ev.boost * s.D * ev.scale[i])
		revenue = ev.prof[i] * (ev.oneMinusAlpha*perf + ev.alpha*local)
	} else {
		revenue = ev.prof[i] * perf
	}

	// Damage: dmgCoef_i·[P(Ω) − P(Ω − d_i·scale_i)].
	gain := perf - ev.acc.Value(omega-s.D*ev.scale[i])
	damage := ev.dmgCoef[i] * gain

	// Redistribution: index-order fold over all j, including the j = i zero
	// term the naive Transfer contributes.
	xi := ev.contribution(i, s)
	var redist float64
	for j := range ev.p {
		if j == i {
			redist += 0
			continue
		}
		redist += ev.gamma * ev.cfg.Rho[i][j] * (xi - ev.xs[j])
	}

	return revenue -
		ev.energyWeight*ev.cfg.Energy(i, s) -
		damage +
		redist
}
