package game

import (
	"fmt"

	"tradefl/internal/accuracy"
	"tradefl/internal/comm"
	"tradefl/internal/randx"
)

// Table II constants from the paper, plus the calibrated defaults for the
// constants the paper leaves unstated (DESIGN.md §6).
const (
	// DefaultN is |N|, the number of organizations.
	DefaultN = 10
	// DefaultDMin is D_min (Table II lists "|N| 10/0.01").
	DefaultDMin = 0.01
	// DefaultKappa is κ, the effective chipset capacitance.
	DefaultKappa = 1e-27
	// DefaultGamma is the measured welfare-maximizing incentive intensity
	// γ* of the default instance (the analogue of the paper's
	// γ* = 5.12e-9 in Fig. 10; the absolute value of γ trades off against
	// the paper's unstated η, ϖ_e and ρ normalization, see EXPERIMENTS.md).
	DefaultGamma = 1.6e-8
	// DefaultLambda is λ, the unit-uniforming weight of f in x_i. It is
	// kept small so that the redistribution index is dominated by data
	// contribution; a large λ lets organizations farm transfers by racing
	// CPU frequency instead of contributing data.
	DefaultLambda = 0.1
	// DefaultEnergyWeight is ϖ_e.
	DefaultEnergyWeight = 0.85
	// DefaultEpochs is G, the training epoch count of the accuracy bound.
	DefaultEpochs = 5
	// DefaultA0 is A(0), the untrained model's accuracy loss, calibrated so
	// default-instance social welfare lands near the paper's ~8.6e3 scale.
	DefaultA0 = 1.1
	// DefaultOmegaUnit measures Ω in kilosamples: the sqrt-loss bound is
	// calibrated on Ω/1000 so that the revenue curve is still rising over
	// the attainable data range (DESIGN.md §6).
	DefaultOmegaUnit = 1000.0
	// DefaultMu is the mean competition intensity for ρ ~ N(μ, (μ/5)²).
	DefaultMu = 0.1
	// DefaultCyclesPerBit is η_i (effective cycles per bit of data).
	DefaultCyclesPerBit = 1.0
	// DefaultDeadline is τ in seconds, calibrated so the deadline binds at
	// the slow end of the CPU grid (cap < 1 for large datasets at 3 GHz)
	// but is loose at the fast end — the tension Sec. V analyses.
	DefaultDeadline = 5.5
	// DefaultTransferTime is T1 = T3 in seconds.
	DefaultTransferTime = 0.25
	// DefaultTransferPower is E_DL = E_UL in watts.
	DefaultTransferPower = 10.0
	// DefaultZMargin keeps z_i ≥ margin·p_i when normalizing ρ.
	DefaultZMargin = 0.02
)

// DefaultCPULevels returns the discrete frequency grid F_i (3-5 GHz,
// Table II) with m levels.
func DefaultCPULevels(m int) []float64 {
	if m < 1 {
		m = 1
	}
	levels := make([]float64, m)
	lo, hi := 3e9, 5e9
	if m == 1 {
		return []float64{hi}
	}
	for k := range levels {
		levels[k] = lo + (hi-lo)*float64(k)/float64(m-1)
	}
	return levels
}

// GenOptions controls DefaultConfig generation. The zero value is replaced
// by Table II defaults field-by-field.
type GenOptions struct {
	N         int     // number of organizations (default DefaultN)
	Mu        float64 // mean competition intensity (default DefaultMu)
	Gamma     float64 // incentive intensity (default DefaultGamma)
	CPUSteps  int     // size m of each CPU grid (default 3)
	Epochs    float64 // G of the sqrt-loss accuracy bound (default DefaultEpochs)
	EnergyW   float64 // ϖ_e (default DefaultEnergyWeight)
	Seed      int64   // RNG seed (default 1)
	Accuracy  accuracy.Model
	NoOrgName bool // leave Name empty (micro-benchmarks)
}

func (o GenOptions) withDefaults() GenOptions {
	if o.N == 0 {
		o.N = DefaultN
	}
	if o.Mu == 0 {
		o.Mu = DefaultMu
	}
	if o.Gamma == 0 {
		o.Gamma = DefaultGamma
	}
	if o.CPUSteps == 0 {
		o.CPUSteps = 3
	}
	if o.Epochs == 0 {
		o.Epochs = DefaultEpochs
	}
	if o.EnergyW == 0 {
		o.EnergyW = DefaultEnergyWeight
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// DefaultConfig draws a game instance from the Table II parameter ranges:
// p_i ~ U[500, 2500], s_i ~ U[15, 25]·10⁹ bits, |S_i| ~ U[1000, 2000]
// samples, F_i a grid over 3-5 GHz, κ = 10⁻²⁷, and ρ ~ N(μ, (μ/5)²)
// symmetric, rescaled so every z_i > 0. The accuracy model defaults to the
// footnote-7 sqrt-loss bound over Ω in samples.
func DefaultConfig(opts GenOptions) (*Config, error) {
	opts = opts.withDefaults()
	src := randx.New(opts.Seed)
	orgs := make([]Organization, opts.N)
	for i := range orgs {
		name := ""
		if !opts.NoOrgName {
			name = fmt.Sprintf("org-%02d", i)
		}
		orgs[i] = Organization{
			Name:          name,
			DataBits:      src.Uniform(15e9, 25e9),
			Samples:       float64(src.UniformInt(1000, 2000)),
			Profitability: src.Uniform(500, 2500),
			CPULevels:     DefaultCPULevels(opts.CPUSteps),
			Comm: comm.Profile{
				DownloadTime:  DefaultTransferTime,
				UploadTime:    DefaultTransferTime,
				CyclesPerBit:  DefaultCyclesPerBit,
				DownloadPower: DefaultTransferPower,
				UploadPower:   DefaultTransferPower,
				Kappa:         DefaultKappa,
			},
		}
	}
	model := opts.Accuracy
	if model == nil {
		scaled, err := accuracy.NewScaled(accuracy.NewSqrtLoss(opts.Epochs, DefaultA0), DefaultOmegaUnit)
		if err != nil {
			return nil, fmt.Errorf("default config: %w", err)
		}
		model = scaled
	}
	cfg := &Config{
		Orgs:           orgs,
		Rho:            src.CompetitionMatrix(opts.N, opts.Mu),
		Gamma:          opts.Gamma,
		Lambda:         DefaultLambda,
		EnergyWeight:   opts.EnergyW,
		DMin:           DefaultDMin,
		Deadline:       DefaultDeadline,
		Accuracy:       model,
		OmegaInSamples: true,
	}
	cfg.NormalizeRho(DefaultZMargin)
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("default config: %w", err)
	}
	return cfg, nil
}
