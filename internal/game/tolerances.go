package game

// Float-comparison tolerances of the game package, unified in one place so
// validation, normalization and the verify subsystem agree on what counts
// as "equal". Before this file each call site hand-picked its own epsilon
// (a mix of 1e-12, 1e-9 and 1e-6, some absolute, some relative), which made
// the invariant audits of internal/verify impossible to state precisely.
const (
	// TolRhoSymmetry is the absolute tolerance on |ρ_ij − ρ_ji|; ρ entries
	// live in [0, 1], so an absolute check is scale-correct.
	TolRhoSymmetry = 1e-12

	// TolRelative is the generic relative tolerance used where a quantity
	// is compared against a same-scale reference (e.g. the NormalizeRho
	// row-sum cap).
	TolRelative = 1e-12

	// TolDataFraction is the absolute slack on the data fraction d ∈ [0, 1]
	// when validating strategy bounds.
	TolDataFraction = 1e-12

	// TolDeadlineSec is the absolute slack, in seconds, tolerated on the
	// per-round deadline constraint C^(3).
	TolDeadlineSec = 1e-9

	// TolCPURel is the relative tolerance when matching a strategy's CPU
	// frequency against a listed grid level (levels are O(GHz), so a purely
	// absolute check would be scale-wrong).
	TolCPURel = 1e-6

	// TolCPUAbsHz is the absolute floor, in Hz, of the CPU-level match. A
	// purely relative check |f − s.F| ≤ TolCPURel·f can never match when
	// the grid level f is 0 (the tolerance collapses to zero), so the match
	// uses TolCPUAbsHz + TolCPURel·|f|. At the 3-5 GHz grids of Table II
	// the floor is twelve orders of magnitude below the level spacing and
	// never changes a verdict.
	TolCPUAbsHz = 1e-3
)

// MatchesCPULevel reports whether a strategy frequency f matches the listed
// grid level: |level − f| ≤ TolCPUAbsHz + TolCPURel·|level|.
func MatchesCPULevel(level, f float64) bool {
	diff := level - f
	if diff < 0 {
		diff = -diff
	}
	abs := level
	if abs < 0 {
		abs = -abs
	}
	return diff <= TolCPUAbsHz+TolCPURel*abs
}
