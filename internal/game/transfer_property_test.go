package game

// Property tests for the transfer matrix invariants the verify subsystem
// audits at runtime: bit-exact antisymmetry of pairwise transfers and
// relative-tolerance budget balance — with personalization enabled, which
// reweights payoffs but must leave Definition 5 untouched.

import (
	"math"
	"testing"

	"tradefl/internal/randx"
)

// randomPersonalizedConfig draws a random instance with personalization on.
func randomPersonalizedConfig(t *testing.T, seed int64, src *randx.Source) *Config {
	t.Helper()
	n := 3 + src.Intn(5)
	cfg, err := DefaultConfig(GenOptions{N: n, Seed: seed})
	if err != nil {
		t.Fatalf("DefaultConfig: %v", err)
	}
	cfg.Personal = Personalization{
		Alpha:      src.Uniform(0.05, 0.9),
		LocalBoost: src.Uniform(0.5, 2),
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return cfg
}

// TestTransferAntisymmetryBitExactUnderPersonalization asserts the strong
// form of antisymmetry: r_ij == -r_ji to the bit, not merely within a
// tolerance. With a bit-symmetric ρ the two transfers differ only by the
// sign of the (x_i − x_j) factor, and IEEE-754 negation-via-subtraction is
// exact, so any inequality is a real defect. This is exactly the check
// verify.CheckTransfers applies on its fast path.
func TestTransferAntisymmetryBitExactUnderPersonalization(t *testing.T) {
	src := randx.New(31)
	for trial := 0; trial < 25; trial++ {
		cfg := randomPersonalizedConfig(t, 200+int64(trial), src)
		p := randomProfile(cfg, src)
		for i := 0; i < cfg.N(); i++ {
			for j := 0; j < cfg.N(); j++ {
				rij, rji := cfg.Transfer(i, j, p), cfg.Transfer(j, i, p)
				if rij != -rji {
					t.Fatalf("trial %d: r_%d%d = %v, -r_%d%d = %v differ by %g",
						trial, i, j, rij, j, i, -rji, rij+rji)
				}
			}
		}
	}
}

// TestBudgetBalanceRelativeUnderPersonalization checks Σ_i R_i = 0 with a
// tolerance relative to the gross transfer volume: summation order is not
// pairwise, so the residual scales with Σ|R_i|, and an absolute threshold
// would either miss real leaks on large instances or false-positive on
// high-γ ones. Personalization must not change the balance — transfers do
// not depend on α or the boost.
func TestBudgetBalanceRelativeUnderPersonalization(t *testing.T) {
	src := randx.New(32)
	for trial := 0; trial < 25; trial++ {
		cfg := randomPersonalizedConfig(t, 300+int64(trial), src)
		p := randomProfile(cfg, src)
		var gross float64
		for i := 0; i < cfg.N(); i++ {
			gross += math.Abs(cfg.Redistribution(i, p))
		}
		if sum := cfg.CheckBudgetBalance(p); math.Abs(sum) > 1e-9*math.Max(1, gross) {
			t.Fatalf("trial %d: ΣR_i = %g exceeds 1e-9 of gross volume %g", trial, sum, gross)
		}
		// The base model (personalization off) must balance identically on
		// the same profile.
		base := *cfg
		base.Personal = Personalization{}
		if bb := base.CheckBudgetBalance(p); bb != cfg.CheckBudgetBalance(p) {
			t.Fatalf("trial %d: personalization changed the budget residual: %g vs %g",
				trial, cfg.CheckBudgetBalance(p), bb)
		}
	}
}
