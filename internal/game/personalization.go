package game

// Personalization extension (the paper's stated future work, Sec. VII:
// "personalizing the global model assigned to organizations to meet their
// individual needs").
//
// With personalization degree α ∈ [0, 1), organization i receives a model
// that mixes the global model with a head adapted to its own data, so its
// effective performance is
//
//	P_i(π) = (1−α)·P(Ω) + α·P(β·d_i·scale_i),
//
// where β ≥ 1 (LocalBoost) captures that local data is more relevant to
// the organization's own distribution. Competitors benefit only from the
// shared global component, so coopetition damage scales by (1−α). Energy
// and payoff redistribution are unchanged.
//
// The game remains a weighted potential game: for a unilateral deviation,
// ΔC_i = (1−α)·z_i·ΔP(Ω) + α·p_i·ΔP_loc,i − ϖ_e·ΔE_comp,i + ΔR_i, and the
// local term depends only on π_i, so
//
//	U_α(π) = P(Ω) + Σ_i [α·p_i·P(β·d_i·scale_i) − ϖ_e·E_comp,i + γ·ρ̄_i·x_i] / w_i
//
// with weights w_i = (1−α)·z_i satisfies w_i·ΔU_α = ΔC_i exactly — the
// property tests verify it for α > 0 too. α = 1 is excluded: the shared
// component vanishes and with it the coopetition structure.

// Personalization configures the extension. The zero value disables it
// (pure paper model).
type Personalization struct {
	// Alpha is α ∈ [0, 1), the weight of the locally-adapted component in
	// each organization's effective model performance.
	Alpha float64 `json:"alpha"`
	// LocalBoost is β ≥ 1, the relevance gain of own data under
	// personalization. Zero means 1.
	LocalBoost float64 `json:"localBoost"`
}

// boost returns β with the zero-value default applied.
func (p Personalization) boost() float64 {
	if p.LocalBoost == 0 {
		return 1
	}
	return p.LocalBoost
}

// enabled reports whether the extension is active.
func (p Personalization) enabled() bool { return p.Alpha > 0 }

// localOmega returns the Ω argument of organization i's personalized
// component: β·d_i·scale_i.
func (c *Config) localOmega(i int, s Strategy) float64 {
	return c.Personal.boost() * s.D * c.omegaScale(i)
}

// PersonalPerformance returns P_i(π), the performance of the model
// organization i actually receives: the global P(Ω) when personalization
// is disabled, the (1−α)/α mixture otherwise.
func (c *Config) PersonalPerformance(i int, p Profile) float64 {
	global := c.Performance(p)
	if !c.Personal.enabled() {
		return global
	}
	local := c.Accuracy.Value(c.localOmega(i, p[i]))
	return (1-c.Personal.Alpha)*global + c.Personal.Alpha*local
}
