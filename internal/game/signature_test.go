package game

import (
	"testing"

	"tradefl/internal/accuracy"
)

func sigConfig(t *testing.T) *Config {
	t.Helper()
	cfg, err := DefaultConfig(GenOptions{Seed: 7, N: 5, NoOrgName: true})
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// cloneForSig deep-copies the hashed parts of a config.
func cloneForSig(src *Config) *Config {
	dst := *src
	dst.Orgs = make([]Organization, len(src.Orgs))
	copy(dst.Orgs, src.Orgs)
	for i := range src.Orgs {
		dst.Orgs[i].CPULevels = append([]float64(nil), src.Orgs[i].CPULevels...)
	}
	dst.Rho = make([][]float64, len(src.Rho))
	for i := range src.Rho {
		dst.Rho[i] = append([]float64(nil), src.Rho[i]...)
	}
	return &dst
}

func TestSignatureStableAcrossClones(t *testing.T) {
	cfg := sigConfig(t)
	clone := cloneForSig(cfg)
	if cfg.Signature() != clone.Signature() {
		t.Fatal("deep copy changed the signature")
	}
	if cfg.Signature() != cfg.Signature() {
		t.Fatal("signature not deterministic")
	}
}

func TestSignatureDetectsInPlaceMutation(t *testing.T) {
	cfg := sigConfig(t)
	mutations := map[string]func(*Config){
		"profitability": func(c *Config) { c.Orgs[2].Profitability *= 1.0001 },
		"dataBits":      func(c *Config) { c.Orgs[0].DataBits *= 1.1 },
		"samples":       func(c *Config) { c.Orgs[1].Samples += 1 },
		"quality":       func(c *Config) { c.Orgs[3].Quality = 0.5 },
		"cpuLevel":      func(c *Config) { c.Orgs[0].CPULevels[0] *= 1.01 },
		"rho":           func(c *Config) { c.Rho[1][2] += 1e-6; c.Rho[2][1] += 1e-6 },
		"gamma":         func(c *Config) { c.Gamma *= 2 },
		"lambda":        func(c *Config) { c.Lambda += 0.01 },
		"energyWeight":  func(c *Config) { c.EnergyWeight -= 0.01 },
		"dMin":          func(c *Config) { c.DMin = 0.02 },
		"deadline":      func(c *Config) { c.Deadline += 0.1 },
		"omegaUnit":     func(c *Config) { c.OmegaInSamples = !c.OmegaInSamples },
		"personal":      func(c *Config) { c.Personal.Alpha = 0.3 },
		"comm":          func(c *Config) { c.Orgs[4].Comm.UploadTime += 0.01 },
	}
	base := cfg.Signature()
	for name, mutate := range mutations {
		work := cloneForSig(cfg)
		mutate(work)
		if work.Signature() == base {
			t.Errorf("mutation %q not reflected in signature", name)
		}
	}
}

func TestSameModel(t *testing.T) {
	m1, err := accuracy.NewScaled(accuracy.NewSqrtLoss(5, 1.1), 1000)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := accuracy.NewScaled(accuracy.NewSqrtLoss(5, 1.1), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !SameModel(m1, m1) {
		t.Fatal("model not equal to itself")
	}
	if !SameModel(nil, nil) {
		t.Fatal("nil models should match")
	}
	if SameModel(m1, nil) || SameModel(nil, m2) {
		t.Fatal("nil vs non-nil should not match")
	}
	pl, err := accuracy.NewPowerLaw(0.2, 0.35)
	if err != nil {
		t.Fatal(err)
	}
	if SameModel(m1, pl) {
		t.Fatal("different dynamic types should not match")
	}
}
