package game

import (
	"fmt"
	"sync/atomic"
)

// Toggle is a three-state option for features that default to a
// process-wide setting: the zero value defers to the default, On/Off force
// the feature regardless of it. Solver Options embed it so tests and
// benchmarks can A/B a single solve while cmds flip the whole process with
// one flag.
type Toggle int

const (
	// ToggleDefault defers to the process-wide default.
	ToggleDefault Toggle = iota
	// ToggleOn forces the feature on.
	ToggleOn
	// ToggleOff forces the feature off.
	ToggleOff
)

// incrementalOff stores the *inverted* process default so the zero value
// means "incremental on" — the engine is byte-identical to the naive path,
// so it is the correct default and -incremental=off exists for A/B runs.
var incrementalOff atomic.Bool

// SetIncrementalDefault sets the process-wide default of the incremental
// evaluation engine (the -incremental flag target). It affects every
// solver whose Options leave the Incremental toggle at ToggleDefault.
func SetIncrementalDefault(on bool) { incrementalOff.Store(!on) }

// IncrementalDefault reports the process-wide incremental default.
func IncrementalDefault() bool { return !incrementalOff.Load() }

// ApplyIncrementalFlag parses a -incremental flag value ("on" or "off") and
// sets the process default accordingly. Shared by all cmds.
func ApplyIncrementalFlag(v string) error {
	switch v {
	case "on":
		SetIncrementalDefault(true)
	case "off":
		SetIncrementalDefault(false)
	default:
		return fmt.Errorf("-incremental must be on or off, got %q", v)
	}
	return nil
}

// Enabled resolves the toggle against the incremental process default.
func (t Toggle) Enabled() bool {
	switch t {
	case ToggleOn:
		return true
	case ToggleOff:
		return false
	default:
		return IncrementalDefault()
	}
}
