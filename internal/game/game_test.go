package game

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"tradefl/internal/accuracy"
	"tradefl/internal/randx"
)

func testConfig(t *testing.T, seed int64) *Config {
	t.Helper()
	cfg, err := DefaultConfig(GenOptions{Seed: seed})
	if err != nil {
		t.Fatalf("DefaultConfig: %v", err)
	}
	return cfg
}

// randomProfile draws a feasible strategy profile.
func randomProfile(cfg *Config, src *randx.Source) Profile {
	p := make(Profile, cfg.N())
	for i, o := range cfg.Orgs {
		f := o.CPULevels[src.Intn(len(o.CPULevels))]
		lo, hi, ok := cfg.FeasibleD(i, f)
		if !ok {
			f = o.CPULevels[len(o.CPULevels)-1]
			lo, hi, _ = cfg.FeasibleD(i, f)
		}
		p[i] = Strategy{D: src.Uniform(lo, hi), F: f}
	}
	return p
}

func TestDefaultConfigMatchesTableII(t *testing.T) {
	cfg := testConfig(t, 1)
	if cfg.N() != 10 {
		t.Errorf("N = %d, want 10", cfg.N())
	}
	if cfg.DMin != 0.01 {
		t.Errorf("DMin = %v, want 0.01", cfg.DMin)
	}
	for i, o := range cfg.Orgs {
		if o.DataBits < 15e9 || o.DataBits > 25e9 {
			t.Errorf("org %d: s_i = %v outside [15,25]e9", i, o.DataBits)
		}
		if o.Samples < 1000 || o.Samples > 2000 {
			t.Errorf("org %d: |S_i| = %v outside [1000,2000]", i, o.Samples)
		}
		if o.Profitability < 500 || o.Profitability > 2500 {
			t.Errorf("org %d: p_i = %v outside [500,2500]", i, o.Profitability)
		}
		if o.Comm.Kappa != 1e-27 {
			t.Errorf("org %d: κ = %v, want 1e-27", i, o.Comm.Kappa)
		}
		if lv := o.CPULevels; lv[0] != 3e9 || lv[len(lv)-1] != 5e9 {
			t.Errorf("org %d: CPU levels %v, want 3-5 GHz span", i, lv)
		}
	}
}

func TestValidateCatchesBrokenConfigs(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"no orgs", func(c *Config) { c.Orgs = nil }, "no organizations"},
		{"nil accuracy", func(c *Config) { c.Accuracy = nil }, "accuracy"},
		{"bad dmin", func(c *Config) { c.DMin = 0 }, "DMin"},
		{"bad dmin high", func(c *Config) { c.DMin = 1.5 }, "DMin"},
		{"bad deadline", func(c *Config) { c.Deadline = 0 }, "deadline"},
		{"negative gamma", func(c *Config) { c.Gamma = -1 }, "gamma"},
		{"rho rows", func(c *Config) { c.Rho = c.Rho[:3] }, "rho"},
		{"rho diagonal", func(c *Config) { c.Rho[2][2] = 0.5 }, "diagonal"},
		{"rho asymmetric", func(c *Config) { c.Rho[0][1] = c.Rho[1][0] + 0.1 }, "symmetric"},
		{"rho out of range", func(c *Config) { c.Rho[0][1] = 2; c.Rho[1][0] = 2 }, "outside"},
		{"bad data size", func(c *Config) { c.Orgs[0].DataBits = 0 }, "data size"},
		{"bad profitability", func(c *Config) { c.Orgs[0].Profitability = -1 }, "profitability"},
		{"no cpu levels", func(c *Config) { c.Orgs[0].CPULevels = nil }, "CPU"},
		{"unsorted cpu", func(c *Config) { c.Orgs[0].CPULevels = []float64{4e9, 3e9} }, "ascending"},
		{"bad comm", func(c *Config) { c.Orgs[0].Comm.Kappa = 0 }, "kappa"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := testConfig(t, 1)
			tt.mutate(cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatal("Validate accepted broken config")
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not mention %q", err, tt.want)
			}
		})
	}
}

func TestValidateRejectsNonPositiveWeight(t *testing.T) {
	cfg := testConfig(t, 1)
	// Crank competition so z_i ≤ 0 for the least profitable organization.
	for i := range cfg.Rho {
		for j := range cfg.Rho[i] {
			if i != j {
				cfg.Rho[i][j] = 1
			}
		}
	}
	if err := cfg.Validate(); err == nil || !strings.Contains(err.Error(), "weight") {
		t.Errorf("Validate = %v, want weight error", err)
	}
}

func TestNormalizeRhoRestoresWeights(t *testing.T) {
	cfg := testConfig(t, 1)
	for i := range cfg.Rho {
		for j := range cfg.Rho[i] {
			if i != j {
				cfg.Rho[i][j] = 0.9
			}
		}
	}
	scale := cfg.NormalizeRho(0.05)
	if scale >= 1 {
		t.Fatalf("scale = %v, want < 1", scale)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Validate after NormalizeRho: %v", err)
	}
	for i := range cfg.Orgs {
		if z := cfg.Weight(i); z < 0.05*cfg.Orgs[i].Profitability-1e-9 {
			t.Errorf("z_%d = %v below margin", i, z)
		}
	}
	// No-op when already fine.
	if s2 := cfg.NormalizeRho(0.05); s2 != 1 {
		t.Errorf("second NormalizeRho scale = %v, want 1", s2)
	}
}

func TestWeightFormula(t *testing.T) {
	cfg := testConfig(t, 2)
	for i := range cfg.Orgs {
		want := cfg.Orgs[i].Profitability
		for j := range cfg.Orgs {
			want -= cfg.Rho[i][j] * cfg.Orgs[j].Profitability
		}
		if got := cfg.Weight(i); math.Abs(got-want) > 1e-9 {
			t.Errorf("Weight(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestOmegaAndExclusion(t *testing.T) {
	cfg := testConfig(t, 3)
	src := randx.New(99)
	p := randomProfile(cfg, src)
	omega := cfg.Omega(p)
	for i := range p {
		excl := cfg.OmegaExcluding(p, i)
		if math.Abs(omega-excl-p[i].D*cfg.Orgs[i].Samples) > 1e-6 {
			t.Errorf("OmegaExcluding(%d) inconsistent", i)
		}
	}
}

func TestTransferAntisymmetry(t *testing.T) {
	cfg := testConfig(t, 4)
	src := randx.New(5)
	p := randomProfile(cfg, src)
	for i := 0; i < cfg.N(); i++ {
		for j := 0; j < cfg.N(); j++ {
			if got := cfg.Transfer(i, j, p) + cfg.Transfer(j, i, p); math.Abs(got) > 1e-9 {
				t.Errorf("r_%d%d + r_%d%d = %v, want 0", i, j, j, i, got)
			}
		}
	}
}

func TestBudgetBalance(t *testing.T) {
	cfg := testConfig(t, 4)
	src := randx.New(6)
	for trial := 0; trial < 20; trial++ {
		p := randomProfile(cfg, src)
		if bb := cfg.CheckBudgetBalance(p); math.Abs(bb) > 1e-6 {
			t.Fatalf("ΣR_i = %v, want 0 (Definition 5)", bb)
		}
	}
}

func TestPayoffDecomposition(t *testing.T) {
	cfg := testConfig(t, 7)
	src := randx.New(8)
	p := randomProfile(cfg, src)
	for i := range p {
		manual := cfg.Revenue(i, p) -
			cfg.EnergyWeight*cfg.Energy(i, p[i]) -
			cfg.Damage(i, p) +
			cfg.Redistribution(i, p)
		if got := cfg.Payoff(i, p); math.Abs(got-manual) > 1e-9 {
			t.Errorf("Payoff(%d) = %v, want decomposition %v", i, got, manual)
		}
	}
}

func TestPayoffsMatchesPayoff(t *testing.T) {
	cfg := testConfig(t, 7)
	src := randx.New(9)
	p := randomProfile(cfg, src)
	batch := cfg.Payoffs(p)
	for i := range p {
		if single := cfg.Payoff(i, p); math.Abs(batch[i]-single) > 1e-6 {
			t.Errorf("Payoffs[%d] = %v, Payoff = %v", i, batch[i], single)
		}
	}
	var sum float64
	for _, v := range batch {
		sum += v
	}
	if sw := cfg.SocialWelfare(p); math.Abs(sw-sum) > 1e-6 {
		t.Errorf("SocialWelfare = %v, want %v", sw, sum)
	}
}

func TestDamageNonnegativeAndZeroWithoutCompetition(t *testing.T) {
	cfg := testConfig(t, 10)
	src := randx.New(11)
	p := randomProfile(cfg, src)
	for i := range p {
		if d := cfg.Damage(i, p); d < -1e-12 {
			t.Errorf("Damage(%d) = %v, want ≥ 0", i, d)
		}
	}
	for i := range cfg.Rho {
		for j := range cfg.Rho[i] {
			cfg.Rho[i][j] = 0
		}
	}
	for i := range p {
		if d := cfg.Damage(i, p); d != 0 {
			t.Errorf("Damage(%d) = %v with ρ=0, want 0", i, d)
		}
	}
}

// TestWeightedPotentialIdentity is the core Theorem 1 check: for any
// unilateral deviation, z_i·ΔU must equal ΔC_i exactly.
func TestWeightedPotentialIdentity(t *testing.T) {
	cfg := testConfig(t, 13)
	src := randx.New(14)
	for trial := 0; trial < 200; trial++ {
		p := randomProfile(cfg, src)
		i := src.Intn(cfg.N())
		q := p.Clone()
		o := cfg.Orgs[i]
		f := o.CPULevels[src.Intn(len(o.CPULevels))]
		lo, hi, ok := cfg.FeasibleD(i, f)
		if !ok {
			continue
		}
		q[i] = Strategy{D: src.Uniform(lo, hi), F: f}
		if err := cfg.PotentialIdentityError(i, p, q); err > 1e-6 {
			t.Fatalf("trial %d: potential identity error %v for org %d", trial, err, i)
		}
	}
}

// TestWeightedPotentialIdentityQuick re-checks the identity on freshly
// generated games (not just the default instance), via testing/quick.
func TestWeightedPotentialIdentityQuick(t *testing.T) {
	check := func(seedRaw int64, devRaw float64) bool {
		seed := seedRaw%100000 + 100001 // keep positive and bounded
		cfg, err := DefaultConfig(GenOptions{Seed: seed, N: 5})
		if err != nil {
			return false
		}
		src := randx.New(seed + 7)
		p := randomProfile(cfg, src)
		i := src.Intn(cfg.N())
		q := p.Clone()
		o := cfg.Orgs[i]
		f := o.CPULevels[src.Intn(len(o.CPULevels))]
		lo, hi, ok := cfg.FeasibleD(i, f)
		if !ok {
			return true
		}
		frac := math.Abs(devRaw)
		frac -= math.Floor(frac)
		q[i] = Strategy{D: lo + (hi-lo)*frac, F: f}
		return cfg.PotentialIdentityError(i, p, q) <= 1e-6
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFeasibleDRespectsDeadline(t *testing.T) {
	cfg := testConfig(t, 16)
	for i, o := range cfg.Orgs {
		for _, f := range o.CPULevels {
			lo, hi, ok := cfg.FeasibleD(i, f)
			if !ok {
				continue
			}
			if lo != cfg.DMin {
				t.Errorf("org %d: lo = %v, want DMin", i, lo)
			}
			if hi > 1 {
				t.Errorf("org %d: hi = %v > 1", i, hi)
			}
			if !o.Comm.MeetsDeadline(hi, o.DataBits, f, cfg.Deadline+1e-9) {
				t.Errorf("org %d: hi = %v violates deadline at f=%v", i, hi, f)
			}
		}
	}
}

func TestFeasibleDInfeasibleWhenDeadlineTight(t *testing.T) {
	cfg := testConfig(t, 16)
	cfg.Deadline = 0.1 // below T1 + T3
	if _, _, ok := cfg.FeasibleD(0, cfg.Orgs[0].CPULevels[0]); ok {
		t.Error("FeasibleD reported feasible under impossible deadline")
	}
}

func TestValidStrategyAndProfile(t *testing.T) {
	cfg := testConfig(t, 17)
	p := cfg.MinimalProfile()
	if err := cfg.ValidProfile(p); err != nil {
		t.Fatalf("minimal profile invalid: %v", err)
	}
	bad := p.Clone()
	bad[0].D = 0 // below DMin
	if err := cfg.ValidProfile(bad); err == nil {
		t.Error("profile with d < DMin accepted")
	}
	bad = p.Clone()
	bad[0].F = 3.3e9 // not a grid level
	if err := cfg.ValidProfile(bad); err == nil {
		t.Error("profile with off-grid f accepted")
	}
	bad = p.Clone()
	bad[0].D = 1
	bad[0].F = cfg.Orgs[0].CPULevels[0]
	if cap := cfg.Orgs[0].Comm.MaxDataFraction(cfg.Orgs[0].DataBits, bad[0].F, cfg.Deadline); cap < 1 {
		if err := cfg.ValidProfile(bad); err == nil {
			t.Error("deadline-violating profile accepted")
		}
	}
	if err := cfg.ValidProfile(p[:3]); err == nil {
		t.Error("short profile accepted")
	}
}

func TestCheckNashDetectsDeviation(t *testing.T) {
	cfg := testConfig(t, 18)
	p := cfg.MinimalProfile()
	// The minimal profile is generally not an equilibrium at default γ.
	rep := cfg.CheckNash(p, 30, 1e-6)
	if rep.IsNash {
		t.Fatalf("minimal profile reported as Nash: %v", rep)
	}
	if rep.Deviator < 0 || rep.MaxRegret <= 0 {
		t.Errorf("report inconsistent: %+v", rep)
	}
	if !strings.Contains(rep.String(), "not nash") {
		t.Errorf("String() = %q", rep.String())
	}
}

func TestCheckIndividualRationality(t *testing.T) {
	cfg := testConfig(t, 19)
	p := cfg.MinimalProfile()
	ok, worst, org := cfg.CheckIndividualRationality(p)
	if !ok {
		t.Logf("IR fails at minimal profile: worst=%v org=%d", worst, org)
	}
	if ok && org != -1 {
		t.Errorf("ok but org = %d, want -1", org)
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := Profile{{D: 0.5, F: 3e9}}
	q := p.Clone()
	q[0].D = 0.9
	if p[0].D != 0.5 {
		t.Error("Clone shares backing array")
	}
}

func TestMinimalProfileUsesFastestCPU(t *testing.T) {
	cfg := testConfig(t, 20)
	p := cfg.MinimalProfile()
	for i, o := range cfg.Orgs {
		if p[i].D != cfg.DMin {
			t.Errorf("org %d: d = %v, want DMin", i, p[i].D)
		}
		if p[i].F != o.CPULevels[len(o.CPULevels)-1] {
			t.Errorf("org %d: f = %v, want fastest level", i, p[i].F)
		}
	}
}

func TestGenOptionsCustomAccuracy(t *testing.T) {
	pl, err := accuracy.NewPowerLaw(0.1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := DefaultConfig(GenOptions{Seed: 3, Accuracy: pl})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Accuracy.Name() != "power-law" {
		t.Errorf("accuracy model = %s, want power-law", cfg.Accuracy.Name())
	}
}

func TestConfigSmallN(t *testing.T) {
	cfg, err := DefaultConfig(GenOptions{Seed: 1, N: 2})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.N() != 2 {
		t.Errorf("N = %d, want 2", cfg.N())
	}
	p := cfg.MinimalProfile()
	if err := cfg.ValidProfile(p); err != nil {
		t.Errorf("minimal profile invalid: %v", err)
	}
}

func TestPotentialUsesStrategyIndependentCommEnergy(t *testing.T) {
	// Doubling communication power must shift payoffs but not the
	// potential differences (comm energy is constant in the strategy).
	cfg := testConfig(t, 21)
	src := randx.New(22)
	p := randomProfile(cfg, src)
	q := p.Clone()
	q[0].D = math.Min(1, q[0].D*0.9+0.05)
	du1 := cfg.Potential(p) - cfg.Potential(q)
	for i := range cfg.Orgs {
		cfg.Orgs[i].Comm.DownloadPower *= 2
	}
	du2 := cfg.Potential(p) - cfg.Potential(q)
	if math.Abs(du1-du2) > 1e-9 {
		t.Errorf("potential difference changed with comm power: %v vs %v", du1, du2)
	}
}
