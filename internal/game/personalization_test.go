package game

import (
	"math"
	"testing"
	"testing/quick"

	"tradefl/internal/randx"
)

func personalizedConfig(t *testing.T, seed int64, alpha, boost float64) *Config {
	t.Helper()
	cfg := testConfig(t, seed)
	cfg.Personal = Personalization{Alpha: alpha, LocalBoost: boost}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return cfg
}

func TestPersonalizationValidation(t *testing.T) {
	cfg := testConfig(t, 1)
	cfg.Personal.Alpha = 1
	if err := cfg.Validate(); err == nil {
		t.Error("alpha = 1 accepted")
	}
	cfg.Personal.Alpha = -0.1
	if err := cfg.Validate(); err == nil {
		t.Error("negative alpha accepted")
	}
	cfg.Personal = Personalization{Alpha: 0.3, LocalBoost: -1}
	if err := cfg.Validate(); err == nil {
		t.Error("negative local boost accepted")
	}
}

func TestPersonalizationDisabledReproducesBaseModel(t *testing.T) {
	base := testConfig(t, 5)
	zero := testConfig(t, 5)
	zero.Personal = Personalization{} // explicit zero value
	src := randx.New(6)
	for trial := 0; trial < 10; trial++ {
		p := randomProfile(base, src)
		for i := range p {
			if base.Payoff(i, p) != zero.Payoff(i, p) {
				t.Fatalf("zero-value personalization changed payoffs")
			}
		}
		if base.Potential(p) != zero.Potential(p) {
			t.Fatal("zero-value personalization changed potential")
		}
	}
}

func TestPersonalPerformanceMixture(t *testing.T) {
	cfg := personalizedConfig(t, 5, 0.4, 2)
	src := randx.New(7)
	p := randomProfile(cfg, src)
	for i := range p {
		global := cfg.Performance(p)
		local := cfg.Accuracy.Value(2 * p[i].D * cfg.Orgs[i].Samples)
		want := 0.6*global + 0.4*local
		if got := cfg.PersonalPerformance(i, p); math.Abs(got-want) > 1e-12 {
			t.Errorf("org %d: P_i = %v, want %v", i, got, want)
		}
	}
}

func TestPersonalizationScalesDamage(t *testing.T) {
	base := testConfig(t, 8)
	pers := personalizedConfig(t, 8, 0.5, 1)
	src := randx.New(9)
	p := randomProfile(base, src)
	for i := range p {
		if got, want := pers.Damage(i, p), 0.5*base.Damage(i, p); math.Abs(got-want) > 1e-9 {
			t.Errorf("org %d: damage %v, want (1−α)·base = %v", i, got, want)
		}
	}
}

// TestPersonalizedPotentialIdentity: the weighted-potential identity must
// hold exactly under the extension, with weights (1−α)·z_i.
func TestPersonalizedPotentialIdentity(t *testing.T) {
	check := func(alphaRaw, boostRaw float64, seedRaw int64) bool {
		alpha := 0.05 + 0.85*frac(alphaRaw)
		boost := 1 + 3*frac(boostRaw)
		seed := seedRaw%1000 + 1001
		cfg, err := DefaultConfig(GenOptions{Seed: seed, N: 6})
		if err != nil {
			return false
		}
		cfg.Personal = Personalization{Alpha: alpha, LocalBoost: boost}
		src := randx.New(seed + 3)
		p := randomProfile(cfg, src)
		i := src.Intn(cfg.N())
		q := p.Clone()
		o := cfg.Orgs[i]
		f := o.CPULevels[src.Intn(len(o.CPULevels))]
		lo, hi, ok := cfg.FeasibleD(i, f)
		if !ok {
			return true
		}
		q[i] = Strategy{D: src.Uniform(lo, hi), F: f}
		return cfg.PotentialIdentityError(i, p, q) <= 1e-6
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func frac(x float64) float64 {
	v := math.Abs(x)
	return v - math.Floor(v)
}

func TestPersonalizationBudgetBalancePreserved(t *testing.T) {
	cfg := personalizedConfig(t, 10, 0.6, 2)
	src := randx.New(11)
	p := randomProfile(cfg, src)
	if bb := cfg.CheckBudgetBalance(p); math.Abs(bb) > 1e-6 {
		t.Errorf("ΣR_i = %v under personalization, want 0", bb)
	}
}

func TestEffectiveWeight(t *testing.T) {
	cfg := personalizedConfig(t, 12, 0.25, 1)
	for i := range cfg.Orgs {
		if got, want := cfg.EffectiveWeight(i), 0.75*cfg.Weight(i); math.Abs(got-want) > 1e-12 {
			t.Errorf("w_%d = %v, want %v", i, got, want)
		}
	}
}

func TestPayoffsBatchMatchesUnderPersonalization(t *testing.T) {
	cfg := personalizedConfig(t, 13, 0.35, 1.5)
	src := randx.New(14)
	p := randomProfile(cfg, src)
	batch := cfg.Payoffs(p)
	for i := range p {
		if single := cfg.Payoff(i, p); math.Abs(batch[i]-single) > 1e-6 {
			t.Errorf("Payoffs[%d] = %v, Payoff = %v", i, batch[i], single)
		}
	}
}
