package game

import "tradefl/internal/obs"

// Equilibrium-audit telemetry. Only the low-frequency audit entry points
// are instrumented; Payoff/Potential evaluations are the innermost hot
// loops of both solvers and stay instrumentation-free.
var (
	mNashChecks     = obs.NewCounter("tradefl_game_nash_checks_total", "CheckNash audits performed")
	mNashViolations = obs.NewCounter("tradefl_game_nash_violations_total", "CheckNash audits that found a profitable deviation")
	mNashRegret     = obs.NewGauge("tradefl_game_nash_max_regret", "largest unilateral payoff improvement found by the last CheckNash audit")
)
