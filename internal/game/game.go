// Package game implements the TradeFL coopetition game (Sec. III-IV of the
// paper): organization payoffs with competition damage and payoff
// redistribution, the weighted potential function of Theorem 1, and checkers
// for the mechanism properties of Definitions 3-5 (individual rationality,
// computational efficiency, budget balance).
//
// Notation follows the paper: organization i contributes a data fraction
// d_i ∈ [Dmin, 1] of its s_i bits and computation f_i drawn from a discrete
// CPU-frequency set F_i. Ω = Σ_i d_i·s_i is the total contributed data (the
// accuracy model may measure Ω in samples; see Config.OmegaOf).
package game

import (
	"errors"
	"fmt"
	"math"

	"tradefl/internal/accuracy"
	"tradefl/internal/comm"
)

// Organization describes one cross-silo FL participant.
type Organization struct {
	// Name identifies the organization in logs and experiment output.
	Name string `json:"name"`
	// DataBits is s_i, the size of the local dataset in bits.
	DataBits float64 `json:"dataBits"`
	// Samples is |S_i|, the number of local data samples.
	Samples float64 `json:"samples"`
	// Profitability is p_i, revenue per unit of global-model performance.
	Profitability float64 `json:"profitability"`
	// CPULevels is the discrete frequency set [F^(1), ..., F^(m)] in
	// cycles/second, sorted ascending.
	CPULevels []float64 `json:"cpuLevels"`
	// Comm holds the timing/energy constants of Sec. III-B/D.
	Comm comm.Profile `json:"comm"`
	// Quality is q_i ∈ (0, 1], the data-quality extension of footnote 3
	// (which the paper holds constant at 1): contributed data counts as
	// q_i·d_i·s_i toward both the accuracy argument Ω and the
	// redistribution index, while training time and energy are paid on the
	// raw volume — low-quality data burns resources without earning
	// credit. Zero means 1 (the paper's model).
	Quality float64 `json:"quality,omitempty"`
}

// quality returns q_i with the zero-value default.
func (o *Organization) quality() float64 {
	if o.Quality == 0 {
		return 1
	}
	return o.Quality
}

// Strategy is π_i = {d_i, f_i}: the data fraction and CPU frequency an
// organization commits to training.
type Strategy struct {
	D float64 `json:"d"`
	F float64 `json:"f"`
}

// Profile is a full strategy profile π, indexed like Config.Orgs.
type Profile []Strategy

// Clone returns a deep copy of the profile.
func (p Profile) Clone() Profile {
	out := make(Profile, len(p))
	copy(out, p)
	return out
}

// Config is a fully-specified coopetition game instance.
type Config struct {
	// Orgs is the player set O.
	Orgs []Organization `json:"orgs"`
	// Rho is the symmetric competition-intensity matrix ρ with zero
	// diagonal; Rho[i][j] ∈ [0, 1].
	Rho [][]float64 `json:"rho"`
	// Gamma is γ, the incentive intensity of payoff redistribution (Eq. 9).
	Gamma float64 `json:"gamma"`
	// Lambda is λ, the unit-uniforming weight of computation in the
	// contribution index x_i = d_i·s_i + λ·f_i (Eq. 9).
	Lambda float64 `json:"lambda"`
	// EnergyWeight is ϖ_e, the weighting factor of training overhead.
	EnergyWeight float64 `json:"energyWeight"`
	// DMin is the minimum participation data fraction D_min ∈ (0, 1].
	DMin float64 `json:"dMin"`
	// Deadline is τ, the per-round completion deadline in seconds.
	Deadline float64 `json:"deadlineSeconds"`
	// Accuracy is the data-accuracy model P(Ω). TradeFL assumes no specific
	// functional form, only the shape property of Eq. (5).
	Accuracy accuracy.Model `json:"-"`
	// OmegaInSamples selects the unit of Ω fed to the accuracy model:
	// samples (d_i·|S_i|) when true, bits (d_i·s_i) when false. The
	// redistribution index always uses bits, as in Eq. (9).
	OmegaInSamples bool `json:"omegaInSamples"`
	// Personal enables the personalization extension (the paper's future
	// work); the zero value reproduces the paper's model exactly.
	Personal Personalization `json:"personal"`
}

// N returns the number of organizations.
func (c *Config) N() int { return len(c.Orgs) }

// Validate checks structural invariants: matching dimensions, symmetric ρ
// with zero diagonal and entries in [0,1], positive weights z_i, sorted CPU
// levels, and valid communication profiles. It does not mutate the config;
// use NormalizeRho to repair z_i ≤ 0.
func (c *Config) Validate() error {
	n := c.N()
	if n == 0 {
		return errors.New("game config: no organizations")
	}
	if c.Accuracy == nil {
		return errors.New("game config: nil accuracy model")
	}
	if c.DMin <= 0 || c.DMin > 1 {
		return fmt.Errorf("game config: DMin %v outside (0,1]", c.DMin)
	}
	if c.Deadline <= 0 {
		return fmt.Errorf("game config: deadline %v must be positive", c.Deadline)
	}
	if c.Gamma < 0 || c.Lambda < 0 || c.EnergyWeight < 0 {
		return errors.New("game config: gamma, lambda and energy weight must be nonnegative")
	}
	if c.Personal.Alpha < 0 || c.Personal.Alpha >= 1 {
		return fmt.Errorf("game config: personalization alpha %v outside [0,1)", c.Personal.Alpha)
	}
	if c.Personal.LocalBoost < 0 {
		return fmt.Errorf("game config: personalization local boost %v negative", c.Personal.LocalBoost)
	}
	if len(c.Rho) != n {
		return fmt.Errorf("game config: rho has %d rows, want %d", len(c.Rho), n)
	}
	for i, row := range c.Rho {
		if len(row) != n {
			return fmt.Errorf("game config: rho row %d has %d cols, want %d", i, len(row), n)
		}
		if row[i] != 0 {
			return fmt.Errorf("game config: rho[%d][%d] = %v, diagonal must be zero", i, i, row[i])
		}
		for j, v := range row {
			if v < 0 || v > 1 {
				return fmt.Errorf("game config: rho[%d][%d] = %v outside [0,1]", i, j, v)
			}
			if math.Abs(v-c.Rho[j][i]) > TolRhoSymmetry {
				return fmt.Errorf("game config: rho not symmetric at (%d,%d)", i, j)
			}
		}
	}
	for i, o := range c.Orgs {
		if o.DataBits <= 0 || o.Samples <= 0 {
			return fmt.Errorf("game config: org %d has non-positive data size", i)
		}
		if o.Profitability <= 0 {
			return fmt.Errorf("game config: org %d has non-positive profitability", i)
		}
		if o.Quality < 0 || o.Quality > 1 {
			return fmt.Errorf("game config: org %d quality %v outside (0,1] (0 means default 1)", i, o.Quality)
		}
		if len(o.CPULevels) == 0 {
			return fmt.Errorf("game config: org %d has no CPU levels", i)
		}
		for k := 1; k < len(o.CPULevels); k++ {
			if o.CPULevels[k] <= o.CPULevels[k-1] {
				return fmt.Errorf("game config: org %d CPU levels not strictly ascending", i)
			}
		}
		if o.CPULevels[0] <= 0 {
			return fmt.Errorf("game config: org %d has non-positive CPU level", i)
		}
		if err := o.Comm.Validate(); err != nil {
			return fmt.Errorf("game config: org %d: %w", i, err)
		}
		if z := c.Weight(i); z <= 0 {
			return fmt.Errorf("game config: weight z_%d = %v ≤ 0; call NormalizeRho (Theorem 1 requires z_i > 0)", i, z)
		}
	}
	return nil
}

// Weight returns z_i = p_i − Σ_j ρ_ij·p_j, the weighting factor of the
// weighted potential game (Theorem 1).
func (c *Config) Weight(i int) float64 {
	z := c.Orgs[i].Profitability
	for j := range c.Orgs {
		z -= c.Rho[i][j] * c.Orgs[j].Profitability
	}
	return z
}

// EffectiveWeight returns the potential-game weight under the
// personalization extension: w_i = (1−α)·z_i, which reduces to z_i in the
// paper's base model.
func (c *Config) EffectiveWeight(i int) float64 {
	return (1 - c.Personal.Alpha) * c.Weight(i)
}

// NormalizeRho caps the competition matrix so every weight satisfies
// z_i ≥ margin·p_i, implementing the paper's remark that "ρ_ij is mapped to
// a small number to ensure z_i > 0". The cap is pairwise and symmetric —
// ρ'_ij = ρ_ij·min(c_i, c_j) with per-organization factors c_i ∈ (0, 1] —
// so budget balance (which needs ρ symmetric) is preserved while rows of
// highly profitable organizations keep their full competition intensity; a
// single global rescale would make every mean-μ matrix collapse to the same
// effective matrix, erasing the μ-sensitivity of Figs. 10-11. It returns
// the smallest factor applied (1 when no capping was needed).
func (c *Config) NormalizeRho(margin float64) float64 {
	n := c.N()
	factors := make([]float64, n)
	for i := range factors {
		factors[i] = 1
	}
	rowSum := func(i int) float64 {
		var sum float64
		for j := range c.Orgs {
			sum += c.Rho[i][j] * math.Min(factors[i], factors[j]) * c.Orgs[j].Profitability
		}
		return sum
	}
	for iter := 0; iter < 200; iter++ {
		changed := false
		for i := range c.Orgs {
			limit := (1 - margin) * c.Orgs[i].Profitability
			if sum := rowSum(i); sum > limit+TolRelative*limit {
				factors[i] *= limit / sum
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	minFactor := 1.0
	for _, f := range factors {
		if f < minFactor {
			minFactor = f
		}
	}
	if minFactor >= 1-TolRelative {
		return 1
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			c.Rho[i][j] *= math.Min(factors[i], factors[j])
		}
	}
	return minFactor
}

// RhoRowSum returns ρ̄_i = Σ_j ρ_ij.
func (c *Config) RhoRowSum(i int) float64 {
	var sum float64
	for _, v := range c.Rho[i] {
		sum += v
	}
	return sum
}

// omegaScale returns the per-organization multiplier that converts a data
// fraction d_i into this config's Ω unit, quality-weighted.
func (c *Config) omegaScale(i int) float64 {
	if c.OmegaInSamples {
		return c.Orgs[i].quality() * c.Orgs[i].Samples
	}
	return c.Orgs[i].quality() * c.Orgs[i].DataBits
}

// OmegaScale returns the factor that converts organization i's data
// fraction d_i into Ω units (quality-weighted samples or bits); exposed for
// the solvers.
func (c *Config) OmegaScale(i int) float64 { return c.omegaScale(i) }

// DataCredit returns q_i·s_i, the redistribution credit (in bits) per unit
// of d_i; exposed for the solvers.
func (c *Config) DataCredit(i int) float64 {
	return c.Orgs[i].quality() * c.Orgs[i].DataBits
}

// Omega returns Ω(π) = Σ_i d_i·scale_i in the accuracy model's unit.
func (c *Config) Omega(p Profile) float64 {
	var omega float64
	for i, s := range p {
		omega += s.D * c.omegaScale(i)
	}
	return omega
}

// OmegaExcluding returns Ω with organization i's contribution removed,
// i.e. the paper's P(0, d_-i) argument.
func (c *Config) OmegaExcluding(p Profile, i int) float64 {
	return c.Omega(p) - p[i].D*c.omegaScale(i)
}

// Performance returns P(Ω(π)), the global model's accuracy performance.
func (c *Config) Performance(p Profile) float64 {
	return c.Accuracy.Value(c.Omega(p))
}

// Revenue returns p_i·P_i(d_i, d_-i), organization i's revenue from the
// model it receives (Sec. III-C1; equals p_i·P(Ω) in the base model, the
// personalized mixture under the extension).
func (c *Config) Revenue(i int, p Profile) float64 {
	return c.Orgs[i].Profitability * c.PersonalPerformance(i, p)
}

// Damage returns D_i(d_i, d_-i) = Σ_j ρ_ij·p_j·[P(d_i,d_-i) − P(0,d_-i)],
// the coopetition damage of Eq. (6)-(7). Under personalization only the
// shared global component reaches competitors, so the damage scales by
// (1−α).
func (c *Config) Damage(i int, p Profile) float64 {
	gain := c.Accuracy.Value(c.Omega(p)) - c.Accuracy.Value(c.OmegaExcluding(p, i))
	var sum float64
	for j := range c.Orgs {
		sum += c.Rho[i][j] * c.Orgs[j].Profitability
	}
	return (1 - c.Personal.Alpha) * sum * gain
}

// ContributionIndex returns x_i = q_i·d_i·s_i + λ·f_i, the resource index
// used by payoff redistribution (Eq. 9; q_i = 1 in the paper's model). The
// data term is always in bits.
func (c *Config) ContributionIndex(i int, s Strategy) float64 {
	return c.Orgs[i].quality()*s.D*c.Orgs[i].DataBits + c.Lambda*s.F
}

// Transfer returns r_ij = γ·ρ_ij·(x_i − x_j), the redistribution that i
// receives from j (Eq. 9). Antisymmetric: r_ij = −r_ji.
func (c *Config) Transfer(i, j int, p Profile) float64 {
	if i == j {
		return 0
	}
	xi := c.ContributionIndex(i, p[i])
	xj := c.ContributionIndex(j, p[j])
	return c.Gamma * c.Rho[i][j] * (xi - xj)
}

// Redistribution returns R_i = Σ_j r_ij (Eq. 10).
func (c *Config) Redistribution(i int, p Profile) float64 {
	var sum float64
	for j := range c.Orgs {
		sum += c.Transfer(i, j, p)
	}
	return sum
}

// Energy returns E_i, organization i's total training energy (Eq. 8).
func (c *Config) Energy(i int, s Strategy) float64 {
	return c.Orgs[i].Comm.TotalEnergy(s.D, c.Orgs[i].DataBits, s.F)
}

// Payoff returns C_i(π_i, π_-i) of Eq. (11):
//
//	C_i = p_i·P − ϖ_e·E_i − D_i + R_i.
func (c *Config) Payoff(i int, p Profile) float64 {
	return c.Revenue(i, p) -
		c.EnergyWeight*c.Energy(i, p[i]) -
		c.Damage(i, p) +
		c.Redistribution(i, p)
}

// Payoffs returns all C_i, computed with shared sub-expressions; prefer this
// to calling Payoff in a loop on hot paths. Ω(π) and P(Ω) are computed once
// and the per-organization exclusions Ω − d_i·scale_i are derived from the
// cached sum, so the whole vector costs O(N²) only for the ρ terms instead
// of recomputing the O(N) data sum for every organization.
func (c *Config) Payoffs(p Profile) []float64 {
	n := c.N()
	out := make([]float64, n)
	xs := make([]float64, n)
	var omega float64
	for i := range xs {
		xs[i] = c.ContributionIndex(i, p[i])
		omega += p[i].D * c.omegaScale(i)
	}
	perf := c.Accuracy.Value(omega)
	oneMinusAlpha := 1 - c.Personal.Alpha
	for i := 0; i < n; i++ {
		gain := perf - c.Accuracy.Value(omega-p[i].D*c.omegaScale(i))
		var damage, redist float64
		for j := 0; j < n; j++ {
			damage += c.Rho[i][j] * c.Orgs[j].Profitability
			redist += c.Rho[i][j] * (xs[i] - xs[j])
		}
		revenue := c.Orgs[i].Profitability * perf
		if c.Personal.enabled() {
			local := c.Accuracy.Value(c.localOmega(i, p[i]))
			revenue = c.Orgs[i].Profitability * (oneMinusAlpha*perf + c.Personal.Alpha*local)
		}
		out[i] = revenue -
			c.EnergyWeight*c.Energy(i, p[i]) -
			oneMinusAlpha*damage*gain +
			c.Gamma*redist
	}
	return out
}

// SocialWelfare returns Σ_i C_i(π).
func (c *Config) SocialWelfare(p Profile) float64 {
	var sum float64
	for _, v := range c.Payoffs(p) {
		sum += v
	}
	return sum
}

// TotalDamage returns Σ_i D_i(π), the series plotted in Fig. 9.
func (c *Config) TotalDamage(p Profile) float64 {
	var sum float64
	for i := range c.Orgs {
		sum += c.Damage(i, p)
	}
	return sum
}

// Potential evaluates the weighted potential function of Theorem 1 in its
// exact separable form (see DESIGN.md §2):
//
//	U(π) = P(Ω) + Σ_i [ α·p_i·P(β·d_i·scale_i) − ϖ_e·E_comp_i + γ·ρ̄_i·x_i ] / w_i ,
//
// with w_i = (1−α)·z_i. In the base model (α = 0) this is
// P(Ω) − Σ_i [ϖ_e·E_comp_i − γ·ρ̄_i·x_i]/z_i, and in either case it
// satisfies w_i·[U(π) − U(π')] = C_i(π) − C_i(π') exactly for any
// unilateral deviation by i (the communication-energy term of E_i is
// strategy-independent and is omitted, shifting U by a constant).
func (c *Config) Potential(p Profile) float64 {
	u := c.Performance(p)
	for i := range c.Orgs {
		w := c.EffectiveWeight(i)
		comp := c.Orgs[i].Comm.ComputeEnergy(p[i].D, c.Orgs[i].DataBits, p[i].F)
		term := c.Gamma*c.RhoRowSum(i)*c.ContributionIndex(i, p[i]) - c.EnergyWeight*comp
		if c.Personal.enabled() {
			term += c.Personal.Alpha * c.Orgs[i].Profitability * c.Accuracy.Value(c.localOmega(i, p[i]))
		}
		u += term / w
	}
	return u
}

// FeasibleD returns the feasible data-fraction interval [lo, hi] for
// organization i at frequency f: the intersection of [DMin, 1] with the
// deadline cap of constraint C^(3). ok is false when the interval is empty.
func (c *Config) FeasibleD(i int, f float64) (lo, hi float64, ok bool) {
	capD := c.Orgs[i].Comm.MaxDataFraction(c.Orgs[i].DataBits, f, c.Deadline)
	hi = math.Min(1, capD)
	lo = c.DMin
	return lo, hi, hi >= lo
}

// ValidStrategy reports whether π_i satisfies constraints C^(1)-C^(3) for
// organization i: d in range, f a listed CPU level, deadline met.
func (c *Config) ValidStrategy(i int, s Strategy) error {
	if s.D < c.DMin-TolDataFraction || s.D > 1+TolDataFraction {
		return fmt.Errorf("org %d: d=%v outside [%v, 1]", i, s.D, c.DMin)
	}
	found := false
	for _, f := range c.Orgs[i].CPULevels {
		if MatchesCPULevel(f, s.F) {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("org %d: f=%v not a listed CPU level", i, s.F)
	}
	o := c.Orgs[i]
	if slack := o.Comm.DeadlineSlack(s.D, o.DataBits, s.F, c.Deadline); slack < -TolDeadlineSec {
		return fmt.Errorf("org %d: deadline violated by %v s", i, -slack)
	}
	return nil
}

// ValidProfile reports the first constraint violation in π, or nil.
func (c *Config) ValidProfile(p Profile) error {
	if len(p) != c.N() {
		return fmt.Errorf("profile has %d strategies, want %d", len(p), c.N())
	}
	for i := range p {
		if err := c.ValidStrategy(i, p[i]); err != nil {
			return err
		}
	}
	return nil
}

// MinimalProfile returns the participation-floor profile π̃ with
// d_i = DMin and f_i = F^(m) (the paper's individual-rationality witness in
// Theorem 2 uses d = DMin). Fastest CPU guarantees deadline feasibility
// whenever any level is feasible.
func (c *Config) MinimalProfile() Profile {
	p := make(Profile, c.N())
	for i, o := range c.Orgs {
		p[i] = Strategy{D: c.DMin, F: o.CPULevels[len(o.CPULevels)-1]}
	}
	return p
}
