package gbd

import (
	"context"
	"math"

	"tradefl/internal/accuracy"
	"tradefl/internal/game"
	"tradefl/internal/parallel"
)

// Warm carries reusable CGBD solver state across solves: the previous
// solver's allocations (per-level constant caches, cut tables, primal memo,
// water-fill scratch) and the previous result keyed by the instance's value
// signature. It is the warm-state unit the fleet engine retains per
// instance and recycles across shape-matched instances.
//
// A Warm is single-goroutine: callers that solve concurrently must give
// each in-flight solve its own Warm (the fleet engine transfers ownership
// under its lock).
type Warm struct {
	s   *solver
	cfg *game.Config
	sig uint64
	acc accuracy.Model
	key warmKey
	res *Result
}

// warmKey is the option subset that can change solver output. Workers and
// Incremental are deliberately excluded: both are byte-identical knobs, so
// a cached result stays valid across them.
type warmKey struct {
	Epsilon float64
	MaxIter int
	Master  MasterSolver
}

// Fits reports whether the warm state's allocations fit cfg: same
// organization count and per-organization CPU-grid widths. A fitting Warm
// rebinds without allocating; a non-fitting one falls back to a fresh
// solver.
func (w *Warm) Fits(cfg *game.Config) bool {
	if w == nil || w.s == nil || !w.s.inc || len(w.s.rhoBar) != cfg.N() {
		return false
	}
	for i := range cfg.Orgs {
		if len(w.s.lvlCost[i]) != len(cfg.Orgs[i].CPULevels) {
			return false
		}
	}
	return true
}

// rebind points a shape-matched solver at a (possibly drifted) config,
// recomputing every numeric field from the config's current values and
// emptying all cross-solve state. Only allocations survive, so the solve
// that follows is byte-identical to one on a fresh solver.
func (s *solver) rebind(cfg *game.Config, opts Options) {
	n := cfg.N()
	s.cfg = cfg
	s.opts = opts
	s.workers = parallel.Resolve(opts.Workers)
	s.inc = opts.Incremental.Enabled()
	for i := 0; i < n; i++ {
		s.rhoBar[i] = cfg.RhoRowSum(i)
		s.zs[i] = cfg.Weight(i)
		s.scale[i] = cfg.OmegaScale(i)
	}
	s.optCuts = s.optCuts[:0]
	s.feasCuts = s.feasCuts[:0]
	s.prevIdx = s.prevIdx[:0]
	s.lb = math.Inf(-1)
	if s.inc {
		s.initIncremental()
	}
}

// SolveWarm is Solve with warm-state reuse. When w holds the result of this
// exact instance (same config pointer, same value signature, same accuracy
// model, output-equivalent options) the previous Result is returned
// verbatim — byte-identical by construction, since it is the object a cold
// solve would recompute. Otherwise the instance is solved, reusing the warm
// solver's allocations when the shapes match (the drifted-instance path:
// campaign epochs mutate values but keep the grid shape).
//
// The returned Warm (w itself when non-nil) holds the state for the next
// call; a nil w means cold start. Callers must treat returned Results as
// immutable — the result cache shares them.
func SolveWarm(cfg *game.Config, opts Options, w *Warm) (*Result, *Warm, error) {
	return SolveWarmCtx(context.Background(), cfg, opts, w)
}

// SolveWarmCtx is SolveWarm under a caller context; the solve's span joins
// the trace carried by ctx, with no effect on the computed result.
func SolveWarmCtx(ctx context.Context, cfg *game.Config, opts Options, w *Warm) (*Result, *Warm, error) {
	if err := validateFor(cfg); err != nil {
		return nil, w, err
	}
	opts = opts.withDefaults()
	sig := cfg.Signature()
	key := warmKey{Epsilon: opts.Epsilon, MaxIter: opts.MaxIter, Master: opts.Master}
	if w != nil && w.res != nil && w.cfg == cfg && w.sig == sig &&
		w.key == key && game.SameModel(w.acc, cfg.Accuracy) {
		mWarmResults.Inc()
		return w.res, w, nil
	}
	if w == nil {
		w = &Warm{}
	}
	var s *solver
	if opts.Incremental.Enabled() && w.Fits(cfg) {
		s = w.s
		s.rebind(cfg, opts)
		mWarmScratch.Inc()
	} else {
		s = newSolver(cfg, opts)
	}
	res, err := run(ctx, cfg, opts, s)
	w.s = s
	if err != nil {
		// Keep the scratch (still shape-valid), drop the result key.
		w.cfg, w.sig, w.acc, w.key, w.res = nil, 0, nil, warmKey{}, nil
		return nil, w, err
	}
	w.cfg, w.sig, w.acc, w.key, w.res = cfg, sig, cfg.Accuracy, key, res
	return res, w, nil
}
