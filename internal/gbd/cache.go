package gbd

import "math"

// This file holds the incremental-evaluation state of the CGBD solver
// (Options.Incremental, on by default): per-(organization, CPU-level)
// constant caches, the persistent incrementally-grown master cut tables
// with dominated-cut eviction, and the f-vector-keyed primal memo. Every
// cached quantity is produced by the same floating-point expression the
// naive path evaluates, so solver output is byte-identical either way —
// the equivalence tests assert it field by field.

// primalResult memoizes one solved primal subproblem (19), keyed by the
// f-grid index vector. The d/u slices are shared with the optimality cuts
// generated from them and are never mutated after insertion.
type primalResult struct {
	d, u     []float64
	feasible bool
}

// primalMemoCap bounds the memo; far above any real run (MaxIter defaults
// to 50, so at most 50 distinct f vectors occur), it exists so adversarial
// option settings cannot grow the map without bound. Eviction is FIFO.
const primalMemoCap = 512

// dominationMargin is the strictness margin of dominated-cut eviction: cut
// B is dropped only when the separable bound proves A(f) ≤ B(f) − margin
// for every grid point f. The margin absorbs the floating-point error of
// the bound itself (≈ N·ulp of the term scale, orders of magnitude below
// 1e-6 at the potential's O(1e3) scale), so eviction never removes a cut
// that could tie the min at any grid point — which is what keeps the
// master's φ values bit-identical to the keep-everything naive path.
const dominationMargin = 1e-6

// initIncremental precomputes the per-(org, level) constants every primal
// solve and cut tabulation reuses, and seeds the persistent structures.
// Each cached value is computed once by exactly the expression the naive
// path evaluates per call (linearCostPerOmega, fOnlyTerm, FeasibleD,
// MaxDataFraction), so cached and fresh bits agree.
//
// It is reuse-friendly: when the solver already holds shape-matched
// allocations (a warm rebind, see warm.go), every slice and map is recycled
// and only the values are recomputed — the numeric state is re-derived from
// the config in full, so a rebound solver's output stays byte-identical to
// a fresh one's.
func (s *solver) initIncremental() {
	cfg := s.cfg
	n := cfg.N()
	if len(s.levels) != n {
		s.levels = make([][]float64, n)
		s.lvlCost = make([][]float64, n)
		s.lvlLoY = make([][]float64, n)
		s.lvlHiY = make([][]float64, n)
		s.lvlFOnly = make([][]float64, n)
		s.lvlCapD = make([][]float64, n)
		s.lvlOK = make([][]bool, n)
	}
	for i := 0; i < n; i++ {
		o := cfg.Orgs[i]
		levels := o.CPULevels
		m := len(levels)
		s.levels[i] = levels
		if len(s.lvlCost[i]) != m {
			s.lvlCost[i] = make([]float64, m)
			s.lvlLoY[i] = make([]float64, m)
			s.lvlHiY[i] = make([]float64, m)
			s.lvlFOnly[i] = make([]float64, m)
			s.lvlCapD[i] = make([]float64, m)
			s.lvlOK[i] = make([]bool, m)
		}
		for k, fi := range levels {
			dlo, dhi, ok := cfg.FeasibleD(i, fi)
			s.lvlOK[i][k] = ok
			s.lvlLoY[i][k] = dlo * s.scale[i]
			s.lvlHiY[i][k] = dhi * s.scale[i]
			s.lvlCost[i][k] = s.linearCostPerOmega(i, fi)
			s.lvlFOnly[i][k] = s.fOnlyTerm(i, fi)
			s.lvlCapD[i][k] = o.Comm.MaxDataFraction(o.DataBits, fi, cfg.Deadline)
		}
	}
	if s.tables == nil {
		s.tables = &cutTables{}
	}
	t := s.tables
	t.levels = s.levels
	t.opt, t.optMax, t.optConst = t.opt[:0], t.optMax[:0], t.optConst[:0]
	t.feas, t.feasMin = t.feas[:0], t.feasMin[:0]
	if s.memo == nil {
		s.memo = make(map[string]primalResult)
	} else {
		clear(s.memo)
	}
	s.memoKeys = s.memoKeys[:0]
	if len(s.wfY) != n {
		s.wfY = make([]float64, n)
		s.wfOrder = make([]int, n)
		s.wfW = make([]float64, n)
		s.wfLo = make([]float64, n)
		s.wfHi = make([]float64, n)
	}
	s.lb = math.Inf(-1)
}

// optCutTermCached is optCutTerm with the two self-contained f_i-only
// subexpressions (linearCostPerOmega, fOnlyTerm) read from the level
// caches; the remaining arithmetic is verbatim, so the result is
// bit-identical to the naive evaluation.
func (s *solver) optCutTermCached(c optimalityCut, i, k int) float64 {
	fi := s.levels[i][k]
	o := s.cfg.Orgs[i]
	coef := (c.pSlope-s.lvlCost[i][k])*s.scale[i] -
		c.u[i]*o.Comm.CyclesPerBit*o.DataBits/fi
	inner := coef * s.cfg.DMin
	if v := coef * 1; v > inner {
		inner = v
	}
	base := o.Comm.DownloadTime + o.Comm.UploadTime - s.cfg.Deadline
	return inner + s.lvlFOnly[i][k] - c.u[i]*base
}

// cutDominates reports whether cut A sits strictly below cut B across the
// whole f grid: max_f [A(f) − B(f)] ≤ Σ_i max_k (A_ik − B_ik) + cA − cB,
// and A dominates when that separable bound is ≤ −dominationMargin. A
// dominated cut never attains the min-over-cuts alone, so dropping it
// leaves every φ value bit-identical.
func cutDominates(aTerms [][]float64, aConst float64, bTerms [][]float64, bConst float64) bool {
	bound := aConst - bConst
	for i := range aTerms {
		best := math.Inf(-1)
		for k := range aTerms[i] {
			if d := aTerms[i][k] - bTerms[i][k]; d > best {
				best = d
			}
		}
		bound += best
	}
	return bound <= -dominationMargin
}

// addOptCut stores a freshly generated optimality cut. The naive path
// appends and lets buildTables re-tabulate everything each master call;
// the incremental path tabulates just this cut into the persistent tables
// and evicts strictly dominated cuts (either direction).
func (s *solver) addOptCut(c optimalityCut) {
	if !s.inc {
		s.optCuts = append(s.optCuts, c)
		return
	}
	n := s.cfg.N()
	terms := make([][]float64, n)
	maxs := make([]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, len(s.levels[i]))
		best := math.Inf(-1)
		for k := range s.levels[i] {
			row[k] = s.optCutTermCached(c, i, k)
			if row[k] > best {
				best = row[k]
			}
		}
		terms[i] = row
		maxs[i] = best
	}
	konst := s.optCutConst(c)
	t := s.tables
	// An existing cut strictly below the new one everywhere already implies
	// the constraint the new cut would add — skip it.
	for v := range t.opt {
		if cutDominates(t.opt[v], t.optConst[v], terms, konst) {
			mCutsEvicted.Inc()
			return
		}
	}
	// Drop existing cuts the new cut strictly dominates.
	w := 0
	for v := range t.opt {
		if cutDominates(terms, konst, t.opt[v], t.optConst[v]) {
			mCutsEvicted.Inc()
			continue
		}
		t.opt[w], t.optMax[w], t.optConst[w] = t.opt[v], t.optMax[v], t.optConst[v]
		s.optCuts[w] = s.optCuts[v]
		w++
	}
	t.opt = append(t.opt[:w], terms)
	t.optMax = append(t.optMax[:w], maxs)
	t.optConst = append(t.optConst[:w], konst)
	s.optCuts = append(s.optCuts[:w], c)
	mCutTabIncr.Inc()
}

// addFeasCut stores a feasibility cut, tabulating it incrementally when
// the incremental engine is on.
func (s *solver) addFeasCut(c feasibilityCut) {
	s.feasCuts = append(s.feasCuts, c)
	if !s.inc {
		return
	}
	n := s.cfg.N()
	terms := make([][]float64, n)
	mins := make([]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, len(s.levels[i]))
		best := math.Inf(1)
		for k, fi := range s.levels[i] {
			row[k] = s.feasCutTerm(c, i, fi)
			if row[k] < best {
				best = row[k]
			}
		}
		terms[i] = row
		mins[i] = best
	}
	t := s.tables
	t.feas = append(t.feas, terms)
	t.feasMin = append(t.feasMin, mins)
	mCutTabIncr.Inc()
}

// ensureTables returns the master cut tables: the persistent incremental
// tables (already current — cuts tabulate at add time) or a full rebuild
// on the naive path.
func (s *solver) ensureTables() *cutTables {
	if s.inc {
		return s.tables
	}
	mCutTabFull.Inc()
	return s.buildTables()
}

// masterSeed returns the incumbent-derived φ seed of the master search: a
// hair below the lower bound, so grid points that cannot beat the
// incumbent are pruned immediately. Exactness: a suppressed point has
// φ < LB, so the naive master would return ub = φ < lb and Algorithm 1
// would declare convergence on the incumbent — exactly what the seeded
// master's "nothing found" path does; Profile, Potential, iteration count
// and the LowerBounds trace are identical, only the final UpperBounds
// entry may read lb instead of the (converged-anyway) φ.
func (s *solver) masterSeed() float64 {
	if !s.inc || math.IsInf(s.lb, -1) {
		return math.Inf(-1)
	}
	mMasterSeeded.Inc()
	return s.lb - (math.Abs(s.lb)*1e-9 + 1e-9)
}

// masterWarmSeed returns the strongest exactness-preserving incumbent seed
// for a master search: the lower-bound seed (masterSeed), raised to a hair
// below φ(prevIdx) when the previous master's argmax is still feasible
// under the current cut tables — the CGBD warm start. Exactness of the warm
// part: y = φ(prevIdx) is *attained* by a grid point, so seeding strictly
// below y cannot change the search result at all. The incumbent stays below
// the true maximum until the first maximizer is visited (an earlier point
// with φ equal to the maximum would itself be the first maximizer), every
// subtree containing it has optimistic bound ≥ max > incumbent and is never
// pruned, and the leaf records it via the same strict > update — so the
// returned argmax, φ, and hence the whole UpperBounds trace are
// byte-identical to the unseeded search. Only the lb-derived floor retains
// masterSeed's final-UB-entry caveat.
func (s *solver) masterWarmSeed(t *cutTables) float64 {
	seed := s.masterSeed()
	if !s.inc || len(s.prevIdx) != s.cfg.N() || !s.gridFeasible(t, s.prevIdx) {
		return seed
	}
	y := s.gridPhi(t, s.prevIdx)
	if math.IsInf(y, 1) {
		return seed
	}
	if warm := y - (math.Abs(y)*1e-9 + 1e-9); warm > seed {
		seed = warm
		mMasterWarm.Inc()
	}
	return seed
}

// solvePrimalMemo serves the primal from the f-vector memo, solving and
// inserting on miss. Hits occur when the master revisits an f — typically
// near convergence and on warm re-solves — and cost O(N) key bytes.
func (s *solver) solvePrimalMemo(f []float64, fIdx []int) ([]float64, []float64, bool) {
	s.keyBuf = s.keyBuf[:0]
	for _, k := range fIdx {
		s.keyBuf = append(s.keyBuf, byte(k), byte(k>>8))
	}
	if r, ok := s.memo[string(s.keyBuf)]; ok {
		mPrimalHits.Inc()
		return r.d, r.u, r.feasible
	}
	mPrimalMisses.Inc()
	d, u, feasible := s.solvePrimalFresh(f, fIdx)
	if len(s.memoKeys) >= primalMemoCap {
		delete(s.memo, s.memoKeys[0])
		s.memoKeys = s.memoKeys[1:]
		mPrimalEvicts.Inc()
	}
	key := string(s.keyBuf)
	s.memo[key] = primalResult{d: d, u: u, feasible: feasible}
	s.memoKeys = append(s.memoKeys, key)
	return d, u, feasible
}
