package gbd

import (
	"math"
	"testing"

	"tradefl/internal/game"
	"tradefl/internal/optimize"
)

// bruteForce exhaustively enumerates every CPU-grid point and solves the
// exact water-fill primal at each, returning the true global maximum of
// problem (18). Only viable for small instances; used to certify CGBD.
func bruteForce(t *testing.T, cfg *game.Config) float64 {
	t.Helper()
	n := cfg.N()
	scale := make([]float64, n)
	rhoBar := make([]float64, n)
	zs := make([]float64, n)
	for i := 0; i < n; i++ {
		scale[i] = cfg.OmegaScale(i)
		rhoBar[i] = cfg.RhoRowSum(i)
		zs[i] = cfg.Weight(i)
	}
	best := math.Inf(-1)
	f := make([]float64, n)
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			lo := make([]float64, n)
			hi := make([]float64, n)
			w := make([]float64, n)
			for i := 0; i < n; i++ {
				dlo, dhi, ok := cfg.FeasibleD(i, f[i])
				if !ok {
					return
				}
				lo[i] = dlo * scale[i]
				hi[i] = dhi * scale[i]
				o := cfg.Orgs[i]
				perD := (cfg.EnergyWeight*o.Comm.Kappa*f[i]*f[i]*o.Comm.CyclesPerBit*o.DataBits -
					cfg.Gamma*rhoBar[i]*cfg.DataCredit(i)) / zs[i]
				w[i] = perD / scale[i]
			}
			prob := &optimize.WaterFillProblem{
				Phi:      cfg.Accuracy.Value,
				PhiPrime: cfg.Accuracy.Derivative,
				W:        w, Lo: lo, Hi: hi,
			}
			y, _, err := prob.Solve()
			if err != nil {
				t.Fatal(err)
			}
			p := make(game.Profile, n)
			for i := range p {
				p[i] = game.Strategy{D: y[i] / scale[i], F: f[i]}
			}
			if u := cfg.Potential(p); u > best {
				best = u
			}
			return
		}
		for _, fi := range cfg.Orgs[k].CPULevels {
			f[k] = fi
			rec(k + 1)
		}
	}
	rec(0)
	return best
}

// TestCGBDMatchesBruteForce certifies Lemma 3's optimality on instances
// small enough for exhaustive enumeration: CGBD's potential must equal the
// true global optimum within ε.
func TestCGBDMatchesBruteForce(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		cfg, err := game.DefaultConfig(game.GenOptions{Seed: seed, N: 4, CPUSteps: 3})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Solve(cfg, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want := bruteForce(t, cfg)
		if math.Abs(res.Potential-want) > 1e-5*math.Max(1, math.Abs(want)) {
			t.Errorf("seed %d: CGBD potential %v, brute force %v", seed, res.Potential, want)
		}
	}
}

// TestCGBDMatchesBruteForceTightDeadline repeats the certification with a
// deadline that makes parts of the CPU grid infeasible (feasibility cuts
// active).
func TestCGBDMatchesBruteForceTightDeadline(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		cfg, err := game.DefaultConfig(game.GenOptions{Seed: seed, N: 3, CPUSteps: 4})
		if err != nil {
			t.Fatal(err)
		}
		cfg.DMin = 0.6
		// Slow levels cannot fit DMin·s within the deadline.
		cfg.Deadline = 0.5 + 0.6*25e9/4.2e9
		res, err := Solve(cfg, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want := bruteForce(t, cfg)
		if math.Abs(res.Potential-want) > 1e-5*math.Max(1, math.Abs(want)) {
			t.Errorf("seed %d: CGBD potential %v, brute force %v", seed, res.Potential, want)
		}
		if err := cfg.ValidProfile(res.Profile); err != nil {
			t.Errorf("seed %d: infeasible CGBD profile: %v", seed, err)
		}
	}
}
