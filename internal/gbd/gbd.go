// Package gbd implements CGBD, the centralized Generalized-Benders-
// Decomposition algorithm of TradeFL (Algorithm 1, Sec. V-B).
//
// The joint problem (18) maximizes the weighted potential U(d, f) over the
// continuous data fractions d and the discrete CPU frequencies f, subject
// to the per-organization deadline constraints C^(3). Following the paper,
// it is decomposed into:
//
//   - a primal problem (19): for fixed f, maximize U(d, f) over d — convex
//     (Lemma 1). For fixed f the deadline becomes a box cap on d_i, so the
//     primal has the exact water-filling structure solved by
//     optimize.WaterFillProblem (strictly better than the δ-approximate
//     interior-point method the paper invokes);
//   - a feasibility-check problem (21) for f grids whose slowest levels
//     cannot fit even D_min within the deadline;
//   - a master problem (23) over the discrete f grid, constrained by
//     optimality cuts L*(d_v, f, u_v) and feasibility cuts L_*(d_v, f, λ_v),
//     solved by traversal (as in the paper) or by pruned depth-first search.
//
// Sign convention: the paper states (18) as minimization of −U; we keep the
// maximization form, so the primal values form the lower bound LB and the
// master optimum forms the upper bound UB, with convergence at UB−LB ≤ ε.
package gbd

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"tradefl/internal/game"
	"tradefl/internal/obs"
	"tradefl/internal/optimize"
	"tradefl/internal/parallel"
)

// MasterSolver selects the algorithm used for the master problem (23).
type MasterSolver int

const (
	// MasterTraversal exhaustively enumerates the f grid (the paper's
	// traversal method).
	MasterTraversal MasterSolver = iota + 1
	// MasterPruned runs a depth-first traversal with bound pruning; exact,
	// usually orders of magnitude faster on larger grids.
	MasterPruned
)

// Options configures Solve.
type Options struct {
	// Epsilon is the UB−LB convergence tolerance ε (default 1e-6).
	Epsilon float64
	// MaxIter is K, the iteration cap (default 50).
	MaxIter int
	// Master selects the master-problem solver (default MasterPruned).
	Master MasterSolver
	// Workers bounds the goroutines of the master-problem search (the grid
	// is sharded over the first organization's CPU levels). 0 uses the
	// process default (GOMAXPROCS); 1 runs the exact serial code path.
	// Results are byte-identical for every worker count.
	Workers int
	// Incremental selects the evaluation engine (see cache.go): per-level
	// constant caches, f-vector primal memoization, persistent incrementally-
	// grown cut tables with dominated-cut eviction, and incumbent-seeded
	// master searches (on) versus the naive recompute-everything reference
	// path (off). The solution is byte-identical either way; the zero value
	// follows the process default (-incremental flag), which is on.
	Incremental game.Toggle
}

func (o Options) withDefaults() Options {
	if o.Epsilon == 0 {
		o.Epsilon = 1e-6
	}
	if o.MaxIter == 0 {
		o.MaxIter = 50
	}
	if o.Master == 0 {
		o.Master = MasterPruned
	}
	return o
}

// Result reports the solution and the convergence trace of Algorithm 1.
type Result struct {
	// Profile is the best (d*, f*) found; by Theorem 1's potential-game
	// argument it is a (δ+ε)-approximate Nash equilibrium.
	Profile game.Profile
	// Potential is U(Profile).
	Potential float64
	// LowerBounds[k], UpperBounds[k] trace LB/UB per iteration.
	LowerBounds, UpperBounds []float64
	// PotentialTrace records the primal value of each iteration (Fig. 4).
	PotentialTrace []float64
	// Iterations is the number of completed iterations.
	Iterations int
	// Converged reports UB−LB ≤ ε at exit.
	Converged bool
}

// optimalityCut stores the data of one feasible primal iteration. The
// paper's cut L*(d_v, f, u_v) evaluated at the fixed point d_v (Eq. 20) is
// not a valid upper bound on max_d U(d, f) for f ≠ f_v, which would break
// Lemma 3's optimality guarantee. We therefore use its concavity
// linearization: P(Ω) ≤ P(Ω̂_v) + P'(Ω̂_v)·(Ω − Ω̂_v) turns
// max_{d∈X} L(d, f, u_v) into a separable-in-f_i expression that (a) upper
// bounds the primal value at every f and (b) coincides with
// U(d_v, f_v) + u_v·G(d_v, f_v) = U(d_v, f_v) at the generating point, so
// GBD's finite ε-convergence to the global optimum is restored
// (DESIGN.md §2 records this as a clarification of the paper).
type optimalityCut struct {
	d []float64 // data fractions d_v
	u []float64 // deadline multipliers u_v
	// omegaHat = Ω(d_v); pHat = P(Ω̂); pSlope = P'(Ω̂).
	omegaHat, pHat, pSlope float64
}

// feasibilityCut stores (d_w, λ_w) of an infeasible iteration; it requires
// Σ_i λ_i·G_i(d_w,i, f_i) ≤ 0.
type feasibilityCut struct {
	d      []float64
	lambda []float64
}

// solver carries per-run precomputation.
type solver struct {
	cfg  *game.Config
	opts Options
	// workers is the resolved master-search worker count (≥ 1).
	workers int
	// inc selects the incremental evaluation engine (cache.go).
	inc bool
	// rhoBar[i] = ρ̄_i, zs[i] = z_i, scale[i] = Ω unit per d_i.
	rhoBar, zs, scale []float64
	optCuts           []optimalityCut
	feasCuts          []feasibilityCut

	// Incremental-engine state, populated by initIncremental (inc only).
	// levels aliases the per-org CPU grids; lvl* cache per-(org, level)
	// constants; tables are the persistent master cut tables; memo/memoKeys/
	// keyBuf implement the f-vector primal memo; lb mirrors the incumbent
	// lower bound for master seeding; wf* are water-fill scratch.
	levels                                     [][]float64
	lvlCost, lvlLoY, lvlHiY, lvlFOnly, lvlCapD [][]float64
	lvlOK                                      [][]bool
	tables                                     *cutTables
	memo                                       map[string]primalResult
	memoKeys                                   []string
	keyBuf                                     []byte
	lb                                         float64
	wfY, wfW, wfLo, wfHi                       []float64
	wfOrder                                    []int
	// prevIdx is the previous master solve's argmax grid point; the next
	// master search warm-starts its incumbent from this point's φ under the
	// current cut set (masterWarmSeed).
	prevIdx []int
}

// newSolver builds the per-run solver state: shared precomputation plus the
// incremental caches when the incremental engine is enabled.
func newSolver(cfg *game.Config, opts Options) *solver {
	n := cfg.N()
	s := &solver{
		cfg:     cfg,
		opts:    opts,
		workers: parallel.Resolve(opts.Workers),
		inc:     opts.Incremental.Enabled(),
		rhoBar:  make([]float64, n),
		zs:      make([]float64, n),
		scale:   make([]float64, n),
		lb:      math.Inf(-1),
	}
	for i := 0; i < n; i++ {
		s.rhoBar[i] = cfg.RhoRowSum(i)
		s.zs[i] = cfg.Weight(i)
		s.scale[i] = cfg.OmegaScale(i)
	}
	if s.inc {
		s.initIncremental()
	}
	return s
}

// ErrInfeasible is returned when no CPU grid point admits a feasible d.
var ErrInfeasible = errors.New("gbd: problem infeasible for every f in the grid")

// validateFor rejects configs Algorithm 1 cannot solve.
func validateFor(cfg *game.Config) error {
	if err := cfg.Validate(); err != nil {
		return fmt.Errorf("gbd: %w", err)
	}
	if cfg.Personal.Alpha > 0 {
		// The personalization extension adds a concave per-organization
		// term to the potential, breaking the linear water-fill structure
		// of the primal; solve personalized games with DBR instead.
		return errors.New("gbd: personalization extension not supported; use DBR")
	}
	return nil
}

// Solve runs Algorithm 1 on the coopetition game and returns the
// near-optimal joint strategy profile.
func Solve(cfg *game.Config, opts Options) (*Result, error) {
	return SolveCtx(context.Background(), cfg, opts)
}

// SolveCtx is Solve under a caller context: the solve's span joins the
// trace carried by ctx (a fleet batch threads its batch trace through
// here), with no effect on the computed result.
func SolveCtx(ctx context.Context, cfg *game.Config, opts Options) (*Result, error) {
	if err := validateFor(cfg); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	return run(ctx, cfg, opts, newSolver(cfg, opts))
}

// run executes Algorithm 1 on a prepared solver (fresh from newSolver or a
// shape-matched rebind, see warm.go). cfg and opts are already validated
// and normalized.
func run(ctx context.Context, cfg *game.Config, opts Options, s *solver) (*Result, error) {
	mRuns.Inc()
	solveStart := time.Now()
	_, root := obs.Span(ctx, "gbd.solve")
	defer mSolveSec.ObserveSince(solveStart)
	defer root.End()
	n := cfg.N()

	// Initial f^(0): the fastest level of every organization, which is
	// feasible whenever any grid point is.
	f := make([]float64, n)
	fIdx := make([]int, n)
	for i, o := range cfg.Orgs {
		fIdx[i] = len(o.CPULevels) - 1
		f[i] = o.CPULevels[fIdx[i]]
	}

	res := &Result{}
	lb := math.Inf(-1)
	ub := math.Inf(1)
	var best game.Profile
	for k := 0; k < opts.MaxIter; k++ {
		res.Iterations = k + 1
		mIterations.Inc()
		iterSpan := root.StartChild("gbd.iter")
		primalStart := time.Now()
		primalSpan := iterSpan.StartChild("gbd.primal")
		d, u, feasible := s.solvePrimal(f, fIdx)
		primalSpan.End()
		mPrimalSec.ObserveSince(primalStart)
		if feasible {
			p := toProfile(d, f)
			val := cfg.Potential(p)
			if val > lb {
				lb = val
				best = p
			}
			s.lb = lb
			// The trace reports the incumbent (best-so-far) potential, the
			// quantity Fig. 4 plots for the centralized algorithm.
			res.PotentialTrace = append(res.PotentialTrace, lb)
			var omegaHat float64
			for i, di := range d {
				omegaHat += di * s.scale[i]
			}
			s.addOptCut(optimalityCut{
				d:        d,
				u:        u,
				omegaHat: omegaHat,
				pHat:     cfg.Accuracy.Value(omegaHat),
				pSlope:   cfg.Accuracy.Derivative(omegaHat),
			})
			mOptCuts.Inc()
		} else {
			feasStart := time.Now()
			feasSpan := iterSpan.StartChild("gbd.feasibility")
			lambda := s.solveFeasibility(f)
			feasSpan.End()
			mFeasSec.ObserveSince(feasStart)
			s.addFeasCut(feasibilityCut{d: d, lambda: lambda})
			mFeasCuts.Inc()
			if len(res.PotentialTrace) > 0 {
				res.PotentialTrace = append(res.PotentialTrace, res.PotentialTrace[len(res.PotentialTrace)-1])
			} else {
				res.PotentialTrace = append(res.PotentialTrace, math.Inf(-1))
			}
		}
		res.LowerBounds = append(res.LowerBounds, lb)

		masterStart := time.Now()
		masterSpan := iterSpan.StartChild("gbd.master")
		fIdxNext, fNext, phi, ok := s.solveMaster()
		masterSpan.End()
		mMasterSec.ObserveSince(masterStart)
		if !ok {
			iterSpan.End()
			if best == nil {
				return nil, ErrInfeasible
			}
			// Every f is cut off: the incumbent is optimal.
			ub = lb
			res.UpperBounds = append(res.UpperBounds, ub)
			res.Converged = true
			break
		}
		if phi < ub {
			ub = phi
		}
		res.UpperBounds = append(res.UpperBounds, ub)
		iterSpan.End()
		if ub-lb <= opts.Epsilon {
			res.Converged = true
			break
		}
		f, fIdx = fNext, fIdxNext
	}
	if best == nil {
		return nil, ErrInfeasible
	}
	res.Profile = best
	res.Potential = lb
	s.publish(res, ub-lb, root)
	audit(cfg, res, opts)
	return res, nil
}

// solveTelemetry is the per-solve convergence record emitted to the
// -telemetry-out JSONL sink: the bound-gap/incumbent series per CGBD
// master iteration, final welfare, and the solve's trace ID as exemplar.
type solveTelemetry struct {
	Kind        string    `json:"kind"`
	TraceID     string    `json:"traceId,omitempty"`
	Iterations  int       `json:"iterations"`
	Converged   bool      `json:"converged"`
	Gap         float64   `json:"gap"`
	Potential   float64   `json:"potential"`
	Welfare     float64   `json:"welfare"`
	LowerBounds []float64 `json:"lowerBounds"`
	UpperBounds []float64 `json:"upperBounds"`
	Incumbents  []float64 `json:"incumbents"`
}

// publish records the run's outcome gauges, distribution histograms and
// trajectories for the diagnostics endpoints, plus the per-solve telemetry
// record when a -telemetry-out sink is open.
func (s *solver) publish(res *Result, gap float64, root *obs.ActiveSpan) {
	if res.Converged {
		mConverged.Inc()
	}
	welfare := s.cfg.SocialWelfare(res.Profile)
	mGap.Set(gap)
	mPotential.Set(res.Potential)
	mWelfare.Set(welfare)
	mGapHist.Observe(gap)
	mItersHist.Observe(float64(res.Iterations))
	mWelfareHist.Observe(welfare)
	obs.RecordTrajectory("gbd.lower_bound", res.LowerBounds)
	obs.RecordTrajectory("gbd.upper_bound", res.UpperBounds)
	obs.RecordTrajectory("gbd.potential", res.PotentialTrace)
	gaps := make([]float64, 0, len(res.UpperBounds))
	for i := range res.UpperBounds {
		if i < len(res.LowerBounds) {
			gaps = append(gaps, res.UpperBounds[i]-res.LowerBounds[i])
		}
	}
	obs.RecordTrajectory("gbd.gap", gaps)
	if obs.TelemetryOpen() {
		rec := solveTelemetry{
			Kind:        "gbd.solve",
			Iterations:  res.Iterations,
			Converged:   res.Converged,
			Gap:         gap,
			Potential:   res.Potential,
			Welfare:     welfare,
			LowerBounds: res.LowerBounds,
			UpperBounds: res.UpperBounds,
			Incumbents:  res.PotentialTrace,
		}
		if tc, ok := root.TraceContext(); ok {
			rec.TraceID = tc.TraceID
		}
		obs.EmitTelemetry(rec)
	}
}

// toProfile assembles a strategy profile from d and f vectors.
func toProfile(d, f []float64) game.Profile {
	p := make(game.Profile, len(d))
	for i := range p {
		p[i] = game.Strategy{D: d[i], F: f[i]}
	}
	return p
}

// linearCostPerOmega returns w_i: the linear coefficient of the potential
// in y_i = scale_i·d_i at frequency fi, negated so the water-fill objective
// φ(Σy) − Σ w·y equals U up to f-only constants:
//
//	U = P(Ω) − Σ_i [ϖ_e·κ·f_i²·η_i·s_i − γ·ρ̄_i·s_i]·d_i/z_i + const(f).
func (s *solver) linearCostPerOmega(i int, fi float64) float64 {
	o := s.cfg.Orgs[i]
	// Energy is paid on the raw data volume; redistribution credit accrues
	// on the quality-weighted volume.
	perD := (s.cfg.EnergyWeight*o.Comm.Kappa*fi*fi*o.Comm.CyclesPerBit*o.DataBits -
		s.cfg.Gamma*s.rhoBar[i]*s.cfg.DataCredit(i)) / s.zs[i]
	return perD / s.scale[i]
}

// fOnlyTerm returns the part of U that depends on f_i but not d_i:
// γ·ρ̄_i·λ·f_i / z_i.
func (s *solver) fOnlyTerm(i int, fi float64) float64 {
	return s.cfg.Gamma * s.rhoBar[i] * s.cfg.Lambda * fi / s.zs[i]
}

// solvePrimal maximizes U(·, f) over the box of feasible d. It returns the
// maximizer, the deadline-constraint Lagrange multipliers u (zero where the
// deadline does not bind), and whether the primal was feasible. On an
// infeasible primal it returns d = DMin everywhere (the feasibility-check
// minimizer) and u = nil. fIdx gives f's grid indices; with the incremental
// engine on it routes through the f-vector memo (pass nil to force a fresh
// solve). Memoized slices are shared — callers must not mutate the result.
func (s *solver) solvePrimal(f []float64, fIdx []int) (d, u []float64, feasible bool) {
	if s.inc && fIdx != nil {
		return s.solvePrimalMemo(f, fIdx)
	}
	return s.solvePrimalFresh(f, fIdx)
}

// solvePrimalFresh solves the primal from scratch. It reads the per-level
// constant caches and reuses water-fill scratch when the incremental engine
// is on (fIdx non-nil); every cached value is bit-identical to the fresh
// expression, so both modes return identical bytes.
func (s *solver) solvePrimalFresh(f []float64, fIdx []int) (d, u []float64, feasible bool) {
	cfg := s.cfg
	n := cfg.N()
	cached := s.inc && fIdx != nil
	d = make([]float64, n)
	var lo, hi, w []float64
	if cached {
		lo, hi, w = s.wfLo, s.wfHi, s.wfW
	} else {
		lo = make([]float64, n)
		hi = make([]float64, n)
		w = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		if cached {
			k := fIdx[i]
			if !s.lvlOK[i][k] {
				for j := range d {
					d[j] = cfg.DMin
				}
				return d, nil, false
			}
			lo[i] = s.lvlLoY[i][k]
			hi[i] = s.lvlHiY[i][k]
			w[i] = s.lvlCost[i][k]
			continue
		}
		dlo, dhi, ok := cfg.FeasibleD(i, f[i])
		if !ok {
			for j := range d {
				d[j] = cfg.DMin
			}
			return d, nil, false
		}
		lo[i] = dlo * s.scale[i]
		hi[i] = dhi * s.scale[i]
		w[i] = s.linearCostPerOmega(i, f[i])
	}
	prob := &optimize.WaterFillProblem{
		Phi:      cfg.Accuracy.Value,
		PhiPrime: cfg.Accuracy.Derivative,
		W:        w,
		Lo:       lo,
		Hi:       hi,
	}
	var y []float64
	var err error
	if cached {
		y, _, err = prob.SolveInto(s.wfY, s.wfOrder)
	} else {
		y, _, err = prob.Solve()
	}
	if err != nil {
		// Bounds were validated above; treat a solver error as infeasible.
		for j := range d {
			d[j] = cfg.DMin
		}
		return d, nil, false
	}
	var omega float64
	for _, v := range y {
		omega += v
	}
	u = make([]float64, n)
	for i := 0; i < n; i++ {
		d[i] = y[i] / s.scale[i]
		// KKT multiplier of the deadline constraint: positive only when the
		// deadline cap binds (d_i at cap < 1) with positive potential
		// gradient. dU/dd_i = [P'(Ω)·scale_i − w_i·scale_i];
		// dG_i/dd_i = η_i·s_i/f_i.
		o := cfg.Orgs[i]
		var capD float64
		if cached {
			capD = s.lvlCapD[i][fIdx[i]]
		} else {
			capD = o.Comm.MaxDataFraction(o.DataBits, f[i], cfg.Deadline)
		}
		atCap := capD < 1 && math.Abs(d[i]-capD) <= 1e-9*math.Max(1, capD)
		if !atCap {
			continue
		}
		gradU := (cfg.Accuracy.Derivative(omega) - w[i]) * s.scale[i]
		if gradU <= 0 {
			continue
		}
		gradG := o.Comm.CyclesPerBit * o.DataBits / f[i]
		u[i] = gradU / gradG
	}
	return d, u, true
}

// solveFeasibility solves the feasibility-check problem (21) for an
// infeasible f: min ζ s.t. G_i(d, f) ≤ ζ with d free in [DMin, 1]. The
// minimizing d is DMin (training time grows with d), and the multiplier
// vector λ is the indicator of the deadline-violating organizations,
// normalized to sum to one — the subgradient certificate that at least one
// G_i stays positive for every admissible d.
func (s *solver) solveFeasibility(f []float64) (lambda []float64) {
	cfg := s.cfg
	n := cfg.N()
	lambda = make([]float64, n)
	var count float64
	for i := 0; i < n; i++ {
		o := cfg.Orgs[i]
		if o.Comm.DeadlineSlack(cfg.DMin, o.DataBits, f[i], cfg.Deadline) < 0 {
			lambda[i] = 1
			count++
		}
	}
	if count > 0 {
		for i := range lambda {
			lambda[i] /= count
		}
	}
	return lambda
}

// deadlineG returns G_i(d, f_i) = T1 + η·d·s/f + T3 − τ.
func (s *solver) deadlineG(i int, d, fi float64) float64 {
	o := s.cfg.Orgs[i]
	return -o.Comm.DeadlineSlack(d, o.DataBits, fi, s.cfg.Deadline)
}

// optCutTerm is the f_i-dependent contribution of organization i to a
// linearized optimality cut:
//
//	max_{d∈[DMin,1]} [(P'(Ω̂) − w_i(f_i))·scale_i − u_i·slope_i(f_i)]·d
//	  + γ·ρ̄_i·λ·f_i/z_i − u_i·(T1 + T3 − τ) ,
//
// where slope_i(f) = η_i·s_i/f is dG_i/dd_i and the Lagrangian of the
// maximization primal is L = U − u·G (weak duality: −u·G ≥ 0 on the
// feasible set). The inner maximum of the linear term sits at one of the
// box endpoints.
func (s *solver) optCutTerm(c optimalityCut, i int, fi float64) float64 {
	o := s.cfg.Orgs[i]
	coef := (c.pSlope-s.linearCostPerOmega(i, fi))*s.scale[i] -
		c.u[i]*o.Comm.CyclesPerBit*o.DataBits/fi
	inner := coef * s.cfg.DMin
	if v := coef * 1; v > inner {
		inner = v
	}
	base := o.Comm.DownloadTime + o.Comm.UploadTime - s.cfg.Deadline
	return inner + s.fOnlyTerm(i, fi) - c.u[i]*base
}

// optCutConst is the f-independent part of a linearized optimality cut:
// P(Ω̂) − P'(Ω̂)·Ω̂.
func (s *solver) optCutConst(c optimalityCut) float64 {
	return c.pHat - c.pSlope*c.omegaHat
}

// feasCutTerm is the f_i-dependent contribution to a feasibility cut.
func (s *solver) feasCutTerm(c feasibilityCut, i int, fi float64) float64 {
	if c.lambda[i] == 0 {
		return 0
	}
	return c.lambda[i] * s.deadlineG(i, c.d[i], fi)
}

// solveMaster maximizes φ over the discrete f grid subject to
// φ ≤ L*(d_v, f, u_v) for all optimality cuts and L_*(d_w, f, λ_w) ≤ 0 for
// all feasibility cuts. It returns the maximizer's grid indices and f
// values. ok is false when every grid point is excluded — or, with the
// incremental engine's incumbent seed, when no grid point can beat the
// current lower bound (in which case Algorithm 1 converges on the incumbent
// exactly as it would have with the naive master).
func (s *solver) solveMaster() (fIdx []int, f []float64, phi float64, ok bool) {
	switch s.opts.Master {
	case MasterTraversal:
		return s.masterTraversal()
	default:
		return s.masterPruned()
	}
}
