package gbd

import (
	"math"
	"sort"

	"tradefl/internal/parallel"
)

// cutTables precomputes, for every cut, the per-organization per-CPU-level
// term values, so grid enumeration touches no float math beyond additions.
type cutTables struct {
	levels [][]float64 // levels[i] = CPU grid of organization i
	// opt[v][i][k]: term of optimality cut v for org i at level k.
	opt [][][]float64
	// optConst[v]: f-independent part of optimality cut v.
	optConst []float64
	// feas[w][i][k]: term of feasibility cut w for org i at level k.
	feas [][][]float64
	// optMax[v][i]: max over k of opt[v][i][k] (for pruning bounds).
	optMax [][]float64
	// feasMin[w][i]: min over k of feas[w][i][k].
	feasMin [][]float64
}

// buildTables tabulates every cut. Cuts are independent of each other, so
// the per-cut work fans out across the solver's workers; each slot is
// written by exactly one goroutine and the content does not depend on the
// worker count.
func (s *solver) buildTables() *cutTables {
	n := s.cfg.N()
	t := &cutTables{levels: make([][]float64, n)}
	for i := 0; i < n; i++ {
		t.levels[i] = s.cfg.Orgs[i].CPULevels
	}
	t.opt = make([][][]float64, len(s.optCuts))
	t.optMax = make([][]float64, len(s.optCuts))
	t.optConst = make([]float64, len(s.optCuts))
	parallel.For(s.workers, len(s.optCuts), func(v int) {
		c := s.optCuts[v]
		terms := make([][]float64, n)
		maxs := make([]float64, n)
		for i := 0; i < n; i++ {
			row := make([]float64, len(t.levels[i]))
			best := math.Inf(-1)
			for k, fi := range t.levels[i] {
				row[k] = s.optCutTerm(c, i, fi)
				if row[k] > best {
					best = row[k]
				}
			}
			terms[i] = row
			maxs[i] = best
		}
		t.opt[v] = terms
		t.optMax[v] = maxs
		t.optConst[v] = s.optCutConst(c)
	})
	t.feas = make([][][]float64, len(s.feasCuts))
	t.feasMin = make([][]float64, len(s.feasCuts))
	parallel.For(s.workers, len(s.feasCuts), func(w int) {
		c := s.feasCuts[w]
		terms := make([][]float64, n)
		mins := make([]float64, n)
		for i := 0; i < n; i++ {
			row := make([]float64, len(t.levels[i]))
			best := math.Inf(1)
			for k, fi := range t.levels[i] {
				row[k] = s.feasCutTerm(c, i, fi)
				if row[k] < best {
					best = row[k]
				}
			}
			terms[i] = row
			mins[i] = best
		}
		t.feas[w] = terms
		t.feasMin[w] = mins
	})
	return t
}

// branchBest is the result of searching one shard of the f grid: the
// shard's first (in enumeration order) maximizer and its φ value.
type branchBest struct {
	phi float64
	idx []int
	ok  bool
}

// reduceBranches folds shard results in shard order with the same
// strictly-greater comparison the serial scans use, so the winner is the
// globally first maximizer in serial enumeration order.
func reduceBranches(results []branchBest) ([]int, float64, bool) {
	bestPhi := math.Inf(-1)
	var bestIdx []int
	for _, r := range results {
		if r.ok && r.phi > bestPhi {
			bestPhi = r.phi
			bestIdx = r.idx
		}
	}
	if bestIdx == nil {
		return nil, 0, false
	}
	return bestIdx, bestPhi, true
}

// masterTraversal enumerates the full f grid — the paper's traversal
// method, Θ(m^N) grid points. With more than one worker the grid is
// sharded over the first organization's CPU levels; each shard enumerates
// its sub-grid in serial order, and the shard results reduce in index
// order, so the chosen grid point is byte-identical to the serial scan.
//
// With the incremental engine on, the scan runs as a prefix-chain
// depth-first enumeration instead (masterTraversalIncremental): per-depth
// partial sums make each grid point cost O(cuts) additions rather than
// O(N·cuts), and the incumbent seed suppresses only points the algorithm
// would converge past anyway.
func (s *solver) masterTraversal() ([]int, []float64, float64, bool) {
	t := s.ensureTables()
	if s.inc {
		return s.masterTraversalIncremental(t)
	}
	n := s.cfg.N()
	roots := len(t.levels[0])
	if s.workers <= 1 || n < 2 || roots < 2 {
		return s.masterTraversalSerial(t)
	}
	results := parallel.MapLabeled("gbd.traversal", s.workers, roots, func(root int) branchBest {
		idx := make([]int, n)
		idx[0] = root
		best := branchBest{phi: math.Inf(-1)}
		for {
			if s.gridFeasible(t, idx) {
				phi := s.gridPhi(t, idx)
				if phi > best.phi {
					best.phi = phi
					best.idx = append(best.idx[:0], idx...)
					best.ok = true
				}
			}
			// Advance the mixed-radix counter over organizations 1..n-1.
			i := n - 1
			for i >= 1 {
				idx[i]++
				if idx[i] < len(t.levels[i]) {
					break
				}
				idx[i] = 0
				i--
			}
			if i < 1 {
				break
			}
		}
		return best
	})
	bestIdx, bestPhi, ok := reduceBranches(results)
	if !ok {
		return nil, nil, 0, false
	}
	return bestIdx, s.gridF(t, bestIdx), bestPhi, true
}

// masterTraversalSerial is the single-core full-grid scan.
func (s *solver) masterTraversalSerial(t *cutTables) ([]int, []float64, float64, bool) {
	n := s.cfg.N()
	idx := make([]int, n)
	bestPhi := math.Inf(-1)
	var bestIdx []int
	for {
		if s.gridFeasible(t, idx) {
			phi := s.gridPhi(t, idx)
			if phi > bestPhi {
				bestPhi = phi
				bestIdx = append(bestIdx[:0], idx...)
			}
		}
		// Advance the mixed-radix counter.
		i := n - 1
		for i >= 0 {
			idx[i]++
			if idx[i] < len(t.levels[i]) {
				break
			}
			idx[i] = 0
			i--
		}
		if i < 0 {
			break
		}
	}
	if bestIdx == nil {
		return nil, nil, 0, false
	}
	return bestIdx, s.gridF(t, bestIdx), bestPhi, true
}

// masterTraversalIncremental is the incremental engine's full-grid scan: a
// depth-first enumeration whose per-depth partial sums (prunedSearch.assign)
// rebuild each cut sum as parent + term in organization order — the exact
// left-to-right fold gridPhi performs — so every φ is bit-identical to the
// mixed-radix scan while the shared prefix work drops the per-point cost
// from O(N·cuts) to O(cuts). No bound pruning is applied beyond the
// incumbent seed; enumeration order (and hence the first-maximizer
// tie-break) matches the serial scan, and with more than one worker the
// tree is sharded at the root exactly like masterPruned.
func (s *solver) masterTraversalIncremental(t *cutTables) ([]int, []float64, float64, bool) {
	n := s.cfg.N()
	seed := s.masterWarmSeed(t)
	roots := len(t.levels[0])
	if s.workers <= 1 || n < 2 || roots < 2 {
		ps := newPrunedSearch(t, nil, n, nil)
		ps.bestPhi = seed
		ps.dfsExhaustive(0)
		if ps.bestIdx == nil {
			return nil, nil, 0, false
		}
		s.prevIdx = ps.bestIdx
		return ps.bestIdx, s.gridF(t, ps.bestIdx), ps.bestPhi, true
	}
	var shared parallel.MaxFloat64
	shared.Update(seed)
	results := parallel.MapLabeled("gbd.traversal", s.workers, roots, func(root int) branchBest {
		ps := newPrunedSearch(t, nil, n, &shared)
		ps.bestPhi = seed
		ps.assign(0, root)
		ps.dfsExhaustive(1)
		return branchBest{phi: ps.bestPhi, idx: ps.bestIdx, ok: ps.bestIdx != nil}
	})
	bestIdx, bestPhi, ok := reduceBranches(results)
	if !ok {
		return nil, nil, 0, false
	}
	s.prevIdx = bestIdx
	return bestIdx, s.gridF(t, bestIdx), bestPhi, true
}

// gridFeasible checks all feasibility cuts at a grid point.
func (s *solver) gridFeasible(t *cutTables, idx []int) bool {
	for w := range t.feas {
		var sum float64
		for i, k := range idx {
			sum += t.feas[w][i][k]
		}
		if sum > 1e-12 {
			return false
		}
	}
	return true
}

// gridPhi evaluates min over optimality cuts at a grid point; +Inf with no
// cuts (the master is then unbounded and any feasible point works).
func (s *solver) gridPhi(t *cutTables, idx []int) float64 {
	if len(t.opt) == 0 {
		return math.Inf(1)
	}
	phi := math.Inf(1)
	for v := range t.opt {
		sum := t.optConst[v]
		for i, k := range idx {
			sum += t.opt[v][i][k]
		}
		if sum < phi {
			phi = sum
		}
	}
	return phi
}

func (s *solver) gridF(t *cutTables, idx []int) []float64 {
	f := make([]float64, len(idx))
	for i, k := range idx {
		f[i] = t.levels[i][k]
	}
	return f
}

// boundSuffixes precomputes suffix sums of per-organization extrema so the
// depth-first search completes partial sums to optimistic bounds in O(1).
type boundSuffixes struct {
	// opt[v][i] = Σ_{j≥i} optMax[v][j]; feas[w][i] = Σ_{j≥i} feasMin[w][j].
	opt, feas [][]float64
}

func newBoundSuffixes(t *cutTables, n int) *boundSuffixes {
	b := &boundSuffixes{
		opt:  make([][]float64, len(t.opt)),
		feas: make([][]float64, len(t.feas)),
	}
	for v := range t.opt {
		suf := make([]float64, n+1)
		for i := n - 1; i >= 0; i-- {
			suf[i] = suf[i+1] + t.optMax[v][i]
		}
		b.opt[v] = suf
	}
	for w := range t.feas {
		suf := make([]float64, n+1)
		for i := n - 1; i >= 0; i-- {
			suf[i] = suf[i+1] + t.feasMin[w][i]
		}
		b.feas[w] = suf
	}
	return b
}

// prunedSearch is the reusable depth-first search state of masterPruned.
// Each worker owns one instance; only the shared incumbent bound crosses
// goroutines.
//
// Partial sums are kept per depth (opt[d][v] is the sum after assigning
// organizations < d) and each level is computed fresh as parent + term —
// never by subtracting on backtrack — so the value at a node is a pure
// function of the path to it. This keeps shard arithmetic byte-identical
// to the serial search (an add/subtract scheme would leak floating-point
// residue from sibling branches into later sums) and removes the drift
// the subtraction itself introduced.
type prunedSearch struct {
	t   *cutTables
	suf *boundSuffixes
	n   int
	// shared is the cross-shard incumbent φ bound; nil in the serial path.
	shared *parallel.MaxFloat64

	idx []int
	// opt[d][v], feas[d][w]: cut partial sums after assigning orgs < d.
	opt, feas [][]float64
	bestPhi   float64
	bestIdx   []int
}

func newPrunedSearch(t *cutTables, suf *boundSuffixes, n int, shared *parallel.MaxFloat64) *prunedSearch {
	ps := &prunedSearch{
		t:       t,
		suf:     suf,
		n:       n,
		shared:  shared,
		idx:     make([]int, n),
		opt:     make([][]float64, n+1),
		feas:    make([][]float64, n+1),
		bestPhi: math.Inf(-1),
	}
	for d := 0; d <= n; d++ {
		ps.opt[d] = make([]float64, len(t.opt))
		ps.feas[d] = make([]float64, len(t.feas))
	}
	for v := range t.opt {
		ps.opt[0][v] = t.optConst[v]
	}
	return ps
}

// assign sets organization depth to level k, deriving the next depth's
// partial sums from the current ones.
func (ps *prunedSearch) assign(depth, k int) {
	ps.idx[depth] = k
	for v, cur := range ps.opt[depth] {
		ps.opt[depth+1][v] = cur + ps.t.opt[v][depth][k]
	}
	for w, cur := range ps.feas[depth] {
		ps.feas[depth+1][w] = cur + ps.t.feas[w][depth][k]
	}
}

// dfs explores the subtree rooted at depth. Pruning is two-fold:
// feasibility cuts that cannot return below zero kill the subtree, and the
// optimistic completion of min-over-cuts prunes against the incumbent —
// the local one with ≤ (matching the serial first-maximizer tie-break
// within a shard) and the shared cross-shard bound with strict <, so a
// shard never discards a point that ties the global optimum and the
// shard-order reduction reproduces the serial tie-break exactly.
func (ps *prunedSearch) dfs(depth int) {
	for w, cur := range ps.feas[depth] {
		if cur+ps.suf.feas[w][depth] > 1e-12 {
			return
		}
	}
	if len(ps.t.opt) > 0 {
		bound := math.Inf(1)
		for v, cur := range ps.opt[depth] {
			if b := cur + ps.suf.opt[v][depth]; b < bound {
				bound = b
			}
		}
		if bound <= ps.bestPhi {
			return
		}
		if ps.shared != nil && bound < ps.shared.Load() {
			return
		}
	}
	if depth == ps.n {
		phi := math.Inf(1)
		for _, cur := range ps.opt[depth] {
			if cur < phi {
				phi = cur
			}
		}
		if phi > ps.bestPhi {
			ps.bestPhi = phi
			ps.bestIdx = append(ps.bestIdx[:0], ps.idx...)
			if ps.shared != nil {
				ps.shared.Update(phi)
			}
		}
		return
	}
	for k := range ps.t.levels[depth] {
		ps.assign(depth, k)
		ps.dfs(depth + 1)
	}
}

// incTables is the incremental engine's layout of the master cut tables:
// depth-major and cut-contiguous. terms[d][k*c+v] holds the depth-d term of
// (reordered) optimality cut v at level k, so evaluating every cut at one
// (depth, level) is a single sequential scan instead of c pointer chases
// through [][][]float64; osuf[d][v] is the matching suffix-of-maxima bound
// completion, contiguous per depth. Cuts are permuted tightest-first (by
// root bound): φ and every node bound are min-over-cuts of per-cut values
// that do not depend on cut order, so the permutation changes no output
// bit, but it lets the fused child loop reach its floor — and the early
// prune exit — after fewer cuts.
type incTables struct {
	c, fc int
	width []int // width[d] = number of CPU levels of organization d
	// terms[d][k*c+v]: optimality-cut terms; osuf[d][v] = Σ_{j≥d} optMax.
	terms, osuf [][]float64
	// fterms[d][k*fc+w]: feasibility-cut terms; fsuf[d][w] = Σ_{j≥d} feasMin.
	fterms, fsuf [][]float64
	konst        []float64 // konst[v]: reordered optConst
}

func newIncTables(t *cutTables, suf *boundSuffixes, n int) *incTables {
	c, fc := len(t.opt), len(t.feas)
	it := &incTables{
		c: c, fc: fc,
		width:  make([]int, n),
		terms:  make([][]float64, n),
		osuf:   make([][]float64, n+1),
		fterms: make([][]float64, n),
		fsuf:   make([][]float64, n+1),
		konst:  make([]float64, c),
	}
	ord := make([]int, c)
	for v := range ord {
		ord[v] = v
	}
	sort.Slice(ord, func(a, b int) bool {
		ba := t.optConst[ord[a]] + suf.opt[ord[a]][0]
		bb := t.optConst[ord[b]] + suf.opt[ord[b]][0]
		if ba != bb {
			return ba < bb
		}
		return ord[a] < ord[b]
	})
	for p, v := range ord {
		it.konst[p] = t.optConst[v]
	}
	for d := 0; d < n; d++ {
		m := len(t.levels[d])
		it.width[d] = m
		row := make([]float64, m*c)
		for k := 0; k < m; k++ {
			for p, v := range ord {
				row[k*c+p] = t.opt[v][d][k]
			}
		}
		it.terms[d] = row
		frow := make([]float64, m*fc)
		for k := 0; k < m; k++ {
			for w := 0; w < fc; w++ {
				frow[k*fc+w] = t.feas[w][d][k]
			}
		}
		it.fterms[d] = frow
	}
	for d := 0; d <= n; d++ {
		os := make([]float64, c)
		for p, v := range ord {
			os[p] = suf.opt[v][d]
		}
		it.osuf[d] = os
		fs := make([]float64, fc)
		for w := 0; w < fc; w++ {
			fs[w] = suf.feas[w][d]
		}
		it.fsuf[d] = fs
	}
	return it
}

// incSearch is the incremental engine's fused depth-first search over the
// flat incTables layout. Per child it computes the next partial sums AND
// the optimistic bound in one sequential pass — the exact operations dfs
// performs split across assign and the child's entry checks (each child
// sum is parent + term, each bound is that sum + the suffix maximum, in
// the same order on the same operands), so every prune decision, φ value,
// and the first-maximizer tie-break are byte-identical to dfs. Pruned
// children never recurse, which removes the call and re-load overhead dfs
// pays at every bound-pruned node. The bound loop exits as soon as the
// running min drops to the incumbent: the running min only decreases, so
// the prune decision equals the full-min decision, and the partial min is
// still a valid (weaker) upper bound for the prefix-bound cache.
type incSearch struct {
	t      *incTables
	n      int
	shared *parallel.MaxFloat64 // cross-shard incumbent; nil when serial

	idx       []int
	opt, feas [][]float64 // partial sums after assigning orgs < d
	bestPhi   float64
	bestIdx   []int
}

func newIncSearch(it *incTables, n int, shared *parallel.MaxFloat64) *incSearch {
	is := &incSearch{
		t:       it,
		n:       n,
		shared:  shared,
		idx:     make([]int, n),
		opt:     make([][]float64, n+1),
		feas:    make([][]float64, n+1),
		bestPhi: math.Inf(-1),
	}
	for d := 0; d <= n; d++ {
		is.opt[d] = make([]float64, it.c)
		is.feas[d] = make([]float64, it.fc)
	}
	copy(is.opt[0], it.konst)
	return is
}

// run performs the entry checks dfs applies at a search root (feasibility
// suffix, optimistic bound vs the local and shared incumbents) and then
// explores the subtree. Interior nodes skip run: their checks already
// happened in the parent's fused child loop.
func (is *incSearch) run(depth int) {
	for w := 0; w < is.t.fc; w++ {
		if is.feas[depth][w]+is.t.fsuf[depth][w] > 1e-12 {
			return
		}
	}
	if is.t.c > 0 {
		bound := math.Inf(1)
		for v := 0; v < is.t.c; v++ {
			if b := is.opt[depth][v] + is.t.osuf[depth][v]; b < bound {
				bound = b
			}
		}
		if bound <= is.bestPhi {
			return
		}
		if is.shared != nil && bound < is.shared.Load() {
			return
		}
	}
	is.descend(depth)
}

// enterShard assigns organization 0 to the shard's root level — the same
// parent + term sums assign computes — and searches the shard subtree.
func (is *incSearch) enterShard(root int) {
	is.idx[0] = root
	c, fc := is.t.c, is.t.fc
	for v := 0; v < c; v++ {
		is.opt[1][v] = is.opt[0][v] + is.t.terms[0][root*c+v]
	}
	for w := 0; w < fc; w++ {
		is.feas[1][w] = is.feas[0][w] + is.t.fterms[0][root*fc+w]
	}
	is.run(1)
}

// descend dispatches subtree exploration to the register-specialized
// kernel for the current optimality-cut count when one exists (no
// feasibility cuts, 2–6 cuts — the common mid-solve shapes), else to the
// generic fused loop. The kernels carry the per-cut partial sums in
// function arguments instead of the per-depth slices, eliminating all
// partial-sum loads and stores on the hot path; every addition, min fold,
// comparison, and tie-break is the same operation on the same operands in
// the same order as the generic loop, so the search result is unchanged
// bit for bit. (The kernels fold the full min where the generic loop may
// exit early; the running min only decreases, so every prune and update
// decision is identical either way.)
func (is *incSearch) descend(depth int) {
	if is.t.fc == 0 {
		cur := is.opt[depth]
		switch is.t.c {
		case 2:
			is.children2(depth, cur[0], cur[1])
			return
		case 3:
			is.children3(depth, cur[0], cur[1], cur[2])
			return
		case 4:
			is.children4(depth, cur[0], cur[1], cur[2], cur[3])
			return
		case 5:
			is.children5(depth, cur[0], cur[1], cur[2], cur[3], cur[4])
			return
		case 6:
			is.children6(depth, cur[0], cur[1], cur[2], cur[3], cur[4], cur[5])
			return
		}
	}
	is.children(depth)
}

func (is *incSearch) children2(depth int, s0, s1 float64) {
	terms := is.t.terms[depth]
	best := is.bestPhi
	if depth == is.n-1 {
		ki := 0
		for k := 0; k+1 < len(terms); k += 2 {
			phi := s0 + terms[k]
			if p := s1 + terms[k+1]; p < phi {
				phi = p
			}
			if phi > best {
				best = phi
				is.bestPhi = phi
				is.idx[depth] = ki
				is.bestIdx = append(is.bestIdx[:0], is.idx...)
				if is.shared != nil {
					is.shared.Update(phi)
				}
			}
			ki++
		}
		return
	}
	o := is.t.osuf[depth+1]
	o0, o1 := o[0], o[1]
	ki := 0
	for k := 0; k+1 < len(terms); k += 2 {
		t0 := s0 + terms[k]
		t1 := s1 + terms[k+1]
		bound := t0 + o0
		if b := t1 + o1; b < bound {
			bound = b
		}
		if bound <= best || (is.shared != nil && bound < is.shared.Load()) {
			ki++
			continue
		}
		is.idx[depth] = ki
		is.children2(depth+1, t0, t1)
		best = is.bestPhi
		ki++
	}
}

func (is *incSearch) children3(depth int, s0, s1, s2 float64) {
	terms := is.t.terms[depth]
	best := is.bestPhi
	if depth == is.n-1 {
		ki := 0
		for k := 0; k+2 < len(terms); k += 3 {
			phi := s0 + terms[k]
			if p := s1 + terms[k+1]; p < phi {
				phi = p
			}
			if p := s2 + terms[k+2]; p < phi {
				phi = p
			}
			if phi > best {
				best = phi
				is.bestPhi = phi
				is.idx[depth] = ki
				is.bestIdx = append(is.bestIdx[:0], is.idx...)
				if is.shared != nil {
					is.shared.Update(phi)
				}
			}
			ki++
		}
		return
	}
	o := is.t.osuf[depth+1]
	o0, o1, o2 := o[0], o[1], o[2]
	ki := 0
	for k := 0; k+2 < len(terms); k += 3 {
		t0 := s0 + terms[k]
		t1 := s1 + terms[k+1]
		t2 := s2 + terms[k+2]
		bound := t0 + o0
		if b := t1 + o1; b < bound {
			bound = b
		}
		if b := t2 + o2; b < bound {
			bound = b
		}
		if bound <= best || (is.shared != nil && bound < is.shared.Load()) {
			ki++
			continue
		}
		is.idx[depth] = ki
		is.children3(depth+1, t0, t1, t2)
		best = is.bestPhi
		ki++
	}
}

func (is *incSearch) children4(depth int, s0, s1, s2, s3 float64) {
	terms := is.t.terms[depth]
	best := is.bestPhi
	if depth == is.n-1 {
		ki := 0
		for k := 0; k+3 < len(terms); k += 4 {
			phi := s0 + terms[k]
			if p := s1 + terms[k+1]; p < phi {
				phi = p
			}
			if p := s2 + terms[k+2]; p < phi {
				phi = p
			}
			if p := s3 + terms[k+3]; p < phi {
				phi = p
			}
			if phi > best {
				best = phi
				is.bestPhi = phi
				is.idx[depth] = ki
				is.bestIdx = append(is.bestIdx[:0], is.idx...)
				if is.shared != nil {
					is.shared.Update(phi)
				}
			}
			ki++
		}
		return
	}
	o := is.t.osuf[depth+1]
	o0, o1, o2, o3 := o[0], o[1], o[2], o[3]
	ki := 0
	for k := 0; k+3 < len(terms); k += 4 {
		t0 := s0 + terms[k]
		t1 := s1 + terms[k+1]
		t2 := s2 + terms[k+2]
		t3 := s3 + terms[k+3]
		bound := t0 + o0
		if b := t1 + o1; b < bound {
			bound = b
		}
		if b := t2 + o2; b < bound {
			bound = b
		}
		if b := t3 + o3; b < bound {
			bound = b
		}
		if bound <= best || (is.shared != nil && bound < is.shared.Load()) {
			ki++
			continue
		}
		is.idx[depth] = ki
		is.children4(depth+1, t0, t1, t2, t3)
		best = is.bestPhi
		ki++
	}
}

func (is *incSearch) children5(depth int, s0, s1, s2, s3, s4 float64) {
	terms := is.t.terms[depth]
	best := is.bestPhi
	if depth == is.n-1 {
		ki := 0
		for k := 0; k+4 < len(terms); k += 5 {
			phi := s0 + terms[k]
			if p := s1 + terms[k+1]; p < phi {
				phi = p
			}
			if p := s2 + terms[k+2]; p < phi {
				phi = p
			}
			if p := s3 + terms[k+3]; p < phi {
				phi = p
			}
			if p := s4 + terms[k+4]; p < phi {
				phi = p
			}
			if phi > best {
				best = phi
				is.bestPhi = phi
				is.idx[depth] = ki
				is.bestIdx = append(is.bestIdx[:0], is.idx...)
				if is.shared != nil {
					is.shared.Update(phi)
				}
			}
			ki++
		}
		return
	}
	o := is.t.osuf[depth+1]
	o0, o1, o2, o3, o4 := o[0], o[1], o[2], o[3], o[4]
	ki := 0
	for k := 0; k+4 < len(terms); k += 5 {
		t0 := s0 + terms[k]
		t1 := s1 + terms[k+1]
		t2 := s2 + terms[k+2]
		t3 := s3 + terms[k+3]
		t4 := s4 + terms[k+4]
		bound := t0 + o0
		if b := t1 + o1; b < bound {
			bound = b
		}
		if b := t2 + o2; b < bound {
			bound = b
		}
		if b := t3 + o3; b < bound {
			bound = b
		}
		if b := t4 + o4; b < bound {
			bound = b
		}
		if bound <= best || (is.shared != nil && bound < is.shared.Load()) {
			ki++
			continue
		}
		is.idx[depth] = ki
		is.children5(depth+1, t0, t1, t2, t3, t4)
		best = is.bestPhi
		ki++
	}
}

func (is *incSearch) children6(depth int, s0, s1, s2, s3, s4, s5 float64) {
	terms := is.t.terms[depth]
	best := is.bestPhi
	if depth == is.n-1 {
		ki := 0
		for k := 0; k+5 < len(terms); k += 6 {
			phi := s0 + terms[k]
			if p := s1 + terms[k+1]; p < phi {
				phi = p
			}
			if p := s2 + terms[k+2]; p < phi {
				phi = p
			}
			if p := s3 + terms[k+3]; p < phi {
				phi = p
			}
			if p := s4 + terms[k+4]; p < phi {
				phi = p
			}
			if p := s5 + terms[k+5]; p < phi {
				phi = p
			}
			if phi > best {
				best = phi
				is.bestPhi = phi
				is.idx[depth] = ki
				is.bestIdx = append(is.bestIdx[:0], is.idx...)
				if is.shared != nil {
					is.shared.Update(phi)
				}
			}
			ki++
		}
		return
	}
	o := is.t.osuf[depth+1]
	o0, o1, o2, o3, o4, o5 := o[0], o[1], o[2], o[3], o[4], o[5]
	ki := 0
	for k := 0; k+5 < len(terms); k += 6 {
		t0 := s0 + terms[k]
		t1 := s1 + terms[k+1]
		t2 := s2 + terms[k+2]
		t3 := s3 + terms[k+3]
		t4 := s4 + terms[k+4]
		t5 := s5 + terms[k+5]
		bound := t0 + o0
		if b := t1 + o1; b < bound {
			bound = b
		}
		if b := t2 + o2; b < bound {
			bound = b
		}
		if b := t3 + o3; b < bound {
			bound = b
		}
		if b := t4 + o4; b < bound {
			bound = b
		}
		if b := t5 + o5; b < bound {
			bound = b
		}
		if bound <= best || (is.shared != nil && bound < is.shared.Load()) {
			ki++
			continue
		}
		is.idx[depth] = ki
		is.children6(depth+1, t0, t1, t2, t3, t4, t5)
		best = is.bestPhi
		ki++
	}
}

// children is the fused hot loop: for each level of organization depth it
// derives the child's partial sums and optimistic bound in one sequential
// pass over the cut-contiguous tables, pruning without recursing. At the
// last organization the children are leaves and the same pass folds φ =
// min-over-cuts directly, exiting early once φ cannot beat the incumbent
// (the running min only decreases, so no winning leaf is ever skipped).
func (is *incSearch) children(depth int) {
	c, fc := is.t.c, is.t.fc
	width := is.t.width[depth]
	cur := is.opt[depth]
	next := is.opt[depth+1]
	terms := is.t.terms[depth]
	leaf := depth == is.n-1
	var osuf []float64
	if !leaf {
		osuf = is.t.osuf[depth+1]
	}
	// best shadows is.bestPhi so the hot loop compares against a register;
	// slice-element stores would otherwise force a reload of the field on
	// every iteration. It is synced at leaf updates and after recursion.
	best := is.bestPhi
	for k := 0; k < width; k++ {
		if fc > 0 {
			fcur, fnext := is.feas[depth], is.feas[depth+1]
			fterms := is.t.fterms[depth]
			fsuf := is.t.fsuf[depth+1]
			infeasible := false
			for w := 0; w < fc; w++ {
				s := fcur[w] + fterms[k*fc+w]
				fnext[w] = s
				if s+fsuf[w] > 1e-12 {
					infeasible = true
					break
				}
			}
			if infeasible {
				continue
			}
		}
		row := terms[k*c : k*c+c]
		if leaf {
			phi := math.Inf(1)
			for v := 0; v < c; v++ {
				if s := cur[v] + row[v]; s < phi {
					phi = s
					if phi <= best {
						break
					}
				}
			}
			if phi > best {
				best = phi
				is.bestPhi = phi
				is.idx[depth] = k
				is.bestIdx = append(is.bestIdx[:0], is.idx...)
				if is.shared != nil {
					is.shared.Update(phi)
				}
			}
			continue
		}
		bound := math.Inf(1)
		pruned := false
		for v := 0; v < c; v++ {
			s := cur[v] + row[v]
			next[v] = s
			if b := s + osuf[v]; b < bound {
				bound = b
				if bound <= best {
					pruned = true
					break
				}
			}
		}
		if pruned {
			continue
		}
		if c > 0 && is.shared != nil && bound < is.shared.Load() {
			continue
		}
		is.idx[depth] = k
		is.children(depth + 1)
		best = is.bestPhi
	}
}

// dfsExhaustive visits every grid point (no bound pruning, no suffix
// tables), evaluating feasibility and φ from the per-depth partial sums at
// the leaves. The leaf fold mirrors gridPhi's min-over-cuts exactly; the
// incumbent comparisons exit a leaf early only when its final φ provably
// cannot win — local incumbent with ≤ (the running min only decreases) and
// the shared cross-shard bound with strict <, preserving the serial
// first-maximizer tie-break.
func (ps *prunedSearch) dfsExhaustive(depth int) {
	if depth == ps.n {
		for _, cur := range ps.feas[depth] {
			if cur > 1e-12 {
				return
			}
		}
		phi := math.Inf(1)
		for _, cur := range ps.opt[depth] {
			if cur < phi {
				phi = cur
				if phi <= ps.bestPhi {
					return
				}
				if ps.shared != nil && phi < ps.shared.Load() {
					return
				}
			}
		}
		if phi > ps.bestPhi {
			ps.bestPhi = phi
			ps.bestIdx = append(ps.bestIdx[:0], ps.idx...)
			if ps.shared != nil {
				ps.shared.Update(phi)
			}
		}
		return
	}
	for k := range ps.t.levels[depth] {
		ps.assign(depth, k)
		ps.dfsExhaustive(depth + 1)
	}
}

// masterPruned runs exact depth-first search with bound pruning. With more
// than one worker the tree is sharded at the root over the first
// organization's CPU levels: every shard searches its subtree with a
// private incumbent plus a shared atomic bound (published maxima from all
// shards) so pruning stays effective across workers, and shard results
// reduce in root order — the returned grid point is byte-identical to the
// serial search for every worker count.
// With the incremental engine on, the same tree is searched by incSearch
// over the flat incTables layout — identical arithmetic fused into one
// pass per child (see incSearch) — starting from the incumbent seed
// (masterWarmSeed): the previous master's argmax re-scored under the
// current tables when still feasible (exact — the seed sits strictly below
// an attained φ, see masterWarmSeed), else a hair below the lower bound
// (masterSeed), so subtrees that cannot beat the incumbent are cut
// immediately while the returned grid point stays byte-identical.
func (s *solver) masterPruned() ([]int, []float64, float64, bool) {
	t := s.ensureTables()
	n := s.cfg.N()
	suf := newBoundSuffixes(t, n)
	if s.inc {
		return s.masterPrunedIncremental(t, suf, n)
	}
	roots := len(t.levels[0])
	if s.workers <= 1 || n < 2 || roots < 2 {
		ps := newPrunedSearch(t, suf, n, nil)
		ps.dfs(0)
		if ps.bestIdx == nil {
			return nil, nil, 0, false
		}
		return ps.bestIdx, s.gridF(t, ps.bestIdx), ps.bestPhi, true
	}
	var shared parallel.MaxFloat64
	results := parallel.MapLabeled("gbd.pruned", s.workers, roots, func(root int) branchBest {
		ps := newPrunedSearch(t, suf, n, &shared)
		ps.assign(0, root)
		ps.dfs(1)
		return branchBest{phi: ps.bestPhi, idx: ps.bestIdx, ok: ps.bestIdx != nil}
	})
	bestIdx, bestPhi, ok := reduceBranches(results)
	if !ok {
		return nil, nil, 0, false
	}
	return bestIdx, s.gridF(t, bestIdx), bestPhi, true
}

// masterPrunedIncremental is masterPruned's incremental-engine path: the
// incSearch fused branch-and-bound over flat tables, warm-seeded and
// backed by the cross-iteration prefix-bound cache.
func (s *solver) masterPrunedIncremental(t *cutTables, suf *boundSuffixes, n int) ([]int, []float64, float64, bool) {
	it := newIncTables(t, suf, n)
	seed := s.masterWarmSeed(t)
	roots := len(t.levels[0])
	if s.workers <= 1 || n < 2 || roots < 2 {
		is := newIncSearch(it, n, nil)
		is.bestPhi = seed
		is.run(0)
		if is.bestIdx == nil {
			return nil, nil, 0, false
		}
		s.prevIdx = is.bestIdx
		return is.bestIdx, s.gridF(t, is.bestIdx), is.bestPhi, true
	}
	var shared parallel.MaxFloat64
	shared.Update(seed)
	results := parallel.MapLabeled("gbd.pruned", s.workers, roots, func(root int) branchBest {
		is := newIncSearch(it, n, &shared)
		is.bestPhi = seed
		is.enterShard(root)
		return branchBest{phi: is.bestPhi, idx: is.bestIdx, ok: is.bestIdx != nil}
	})
	bestIdx, bestPhi, ok := reduceBranches(results)
	if !ok {
		return nil, nil, 0, false
	}
	s.prevIdx = bestIdx
	return bestIdx, s.gridF(t, bestIdx), bestPhi, true
}
