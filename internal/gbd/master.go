package gbd

import "math"

// cutTables precomputes, for every cut, the per-organization per-CPU-level
// term values, so grid enumeration touches no float math beyond additions.
type cutTables struct {
	levels [][]float64 // levels[i] = CPU grid of organization i
	// opt[v][i][k]: term of optimality cut v for org i at level k.
	opt [][][]float64
	// optConst[v]: f-independent part of optimality cut v.
	optConst []float64
	// feas[w][i][k]: term of feasibility cut w for org i at level k.
	feas [][][]float64
	// optMax[v][i]: max over k of opt[v][i][k] (for pruning bounds).
	optMax [][]float64
	// feasMin[w][i]: min over k of feas[w][i][k].
	feasMin [][]float64
}

func (s *solver) buildTables() *cutTables {
	n := s.cfg.N()
	t := &cutTables{levels: make([][]float64, n)}
	for i := 0; i < n; i++ {
		t.levels[i] = s.cfg.Orgs[i].CPULevels
	}
	for _, c := range s.optCuts {
		terms := make([][]float64, n)
		maxs := make([]float64, n)
		for i := 0; i < n; i++ {
			row := make([]float64, len(t.levels[i]))
			best := math.Inf(-1)
			for k, fi := range t.levels[i] {
				row[k] = s.optCutTerm(c, i, fi)
				if row[k] > best {
					best = row[k]
				}
			}
			terms[i] = row
			maxs[i] = best
		}
		t.opt = append(t.opt, terms)
		t.optMax = append(t.optMax, maxs)
		t.optConst = append(t.optConst, s.optCutConst(c))
	}
	for _, c := range s.feasCuts {
		terms := make([][]float64, n)
		mins := make([]float64, n)
		for i := 0; i < n; i++ {
			row := make([]float64, len(t.levels[i]))
			best := math.Inf(1)
			for k, fi := range t.levels[i] {
				row[k] = s.feasCutTerm(c, i, fi)
				if row[k] < best {
					best = row[k]
				}
			}
			terms[i] = row
			mins[i] = best
		}
		t.feas = append(t.feas, terms)
		t.feasMin = append(t.feasMin, mins)
	}
	return t
}

// masterTraversal enumerates the full f grid — the paper's traversal
// method, Θ(m^N) grid points.
func (s *solver) masterTraversal() ([]float64, float64, bool) {
	t := s.buildTables()
	n := s.cfg.N()
	idx := make([]int, n)
	bestPhi := math.Inf(-1)
	var bestIdx []int
	for {
		if s.gridFeasible(t, idx) {
			phi := s.gridPhi(t, idx)
			if phi > bestPhi {
				bestPhi = phi
				bestIdx = append(bestIdx[:0], idx...)
			}
		}
		// Advance the mixed-radix counter.
		i := n - 1
		for i >= 0 {
			idx[i]++
			if idx[i] < len(t.levels[i]) {
				break
			}
			idx[i] = 0
			i--
		}
		if i < 0 {
			break
		}
	}
	if bestIdx == nil {
		return nil, 0, false
	}
	return s.gridF(t, bestIdx), bestPhi, true
}

// gridFeasible checks all feasibility cuts at a grid point.
func (s *solver) gridFeasible(t *cutTables, idx []int) bool {
	for w := range t.feas {
		var sum float64
		for i, k := range idx {
			sum += t.feas[w][i][k]
		}
		if sum > 1e-12 {
			return false
		}
	}
	return true
}

// gridPhi evaluates min over optimality cuts at a grid point; +Inf with no
// cuts (the master is then unbounded and any feasible point works).
func (s *solver) gridPhi(t *cutTables, idx []int) float64 {
	if len(t.opt) == 0 {
		return math.Inf(1)
	}
	phi := math.Inf(1)
	for v := range t.opt {
		sum := t.optConst[v]
		for i, k := range idx {
			sum += t.opt[v][i][k]
		}
		if sum < phi {
			phi = sum
		}
	}
	return phi
}

func (s *solver) gridF(t *cutTables, idx []int) []float64 {
	f := make([]float64, len(idx))
	for i, k := range idx {
		f[i] = t.levels[i][k]
	}
	return f
}

// masterPruned runs exact depth-first search with two bounds: an optimistic
// upper bound on min-over-cuts (partial sums completed with per-org maxima)
// to prune against the incumbent, and an optimistic lower bound on each
// feasibility cut (partial sums completed with per-org minima) to prune
// provably-infeasible subtrees.
func (s *solver) masterPruned() ([]float64, float64, bool) {
	t := s.buildTables()
	n := s.cfg.N()

	// Suffix sums of per-org extrema for O(1) bound completion.
	optSuffix := make([][]float64, len(t.opt)) // optSuffix[v][i] = Σ_{j≥i} optMax[v][j]
	for v := range t.opt {
		suf := make([]float64, n+1)
		for i := n - 1; i >= 0; i-- {
			suf[i] = suf[i+1] + t.optMax[v][i]
		}
		optSuffix[v] = suf
	}
	feasSuffix := make([][]float64, len(t.feas))
	for w := range t.feas {
		suf := make([]float64, n+1)
		for i := n - 1; i >= 0; i-- {
			suf[i] = suf[i+1] + t.feasMin[w][i]
		}
		feasSuffix[w] = suf
	}

	idx := make([]int, n)
	bestPhi := math.Inf(-1)
	var bestIdx []int
	optPartial := make([]float64, len(t.opt))
	for v := range optPartial {
		optPartial[v] = t.optConst[v]
	}
	feasPartial := make([]float64, len(t.feas))

	var dfs func(depth int)
	dfs = func(depth int) {
		// Feasibility pruning: a cut that cannot return below zero even
		// with the most favourable remaining choices kills the subtree.
		for w := range feasPartial {
			if feasPartial[w]+feasSuffix[w][depth] > 1e-12 {
				return
			}
		}
		// Optimality pruning: optimistic completion of min-over-cuts.
		if len(t.opt) > 0 {
			bound := math.Inf(1)
			for v := range optPartial {
				if b := optPartial[v] + optSuffix[v][depth]; b < bound {
					bound = b
				}
			}
			if bound <= bestPhi {
				return
			}
		}
		if depth == n {
			phi := math.Inf(1)
			for v := range optPartial {
				if optPartial[v] < phi {
					phi = optPartial[v]
				}
			}
			if phi > bestPhi {
				bestPhi = phi
				bestIdx = append(bestIdx[:0], idx...)
			}
			return
		}
		for k := range t.levels[depth] {
			idx[depth] = k
			for v := range optPartial {
				optPartial[v] += t.opt[v][depth][k]
			}
			for w := range feasPartial {
				feasPartial[w] += t.feas[w][depth][k]
			}
			dfs(depth + 1)
			for v := range optPartial {
				optPartial[v] -= t.opt[v][depth][k]
			}
			for w := range feasPartial {
				feasPartial[w] -= t.feas[w][depth][k]
			}
		}
	}
	dfs(0)
	if bestIdx == nil {
		return nil, 0, false
	}
	return s.gridF(t, bestIdx), bestPhi, true
}
