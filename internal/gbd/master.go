package gbd

import (
	"math"

	"tradefl/internal/parallel"
)

// cutTables precomputes, for every cut, the per-organization per-CPU-level
// term values, so grid enumeration touches no float math beyond additions.
type cutTables struct {
	levels [][]float64 // levels[i] = CPU grid of organization i
	// opt[v][i][k]: term of optimality cut v for org i at level k.
	opt [][][]float64
	// optConst[v]: f-independent part of optimality cut v.
	optConst []float64
	// feas[w][i][k]: term of feasibility cut w for org i at level k.
	feas [][][]float64
	// optMax[v][i]: max over k of opt[v][i][k] (for pruning bounds).
	optMax [][]float64
	// feasMin[w][i]: min over k of feas[w][i][k].
	feasMin [][]float64
}

// buildTables tabulates every cut. Cuts are independent of each other, so
// the per-cut work fans out across the solver's workers; each slot is
// written by exactly one goroutine and the content does not depend on the
// worker count.
func (s *solver) buildTables() *cutTables {
	n := s.cfg.N()
	t := &cutTables{levels: make([][]float64, n)}
	for i := 0; i < n; i++ {
		t.levels[i] = s.cfg.Orgs[i].CPULevels
	}
	t.opt = make([][][]float64, len(s.optCuts))
	t.optMax = make([][]float64, len(s.optCuts))
	t.optConst = make([]float64, len(s.optCuts))
	parallel.For(s.workers, len(s.optCuts), func(v int) {
		c := s.optCuts[v]
		terms := make([][]float64, n)
		maxs := make([]float64, n)
		for i := 0; i < n; i++ {
			row := make([]float64, len(t.levels[i]))
			best := math.Inf(-1)
			for k, fi := range t.levels[i] {
				row[k] = s.optCutTerm(c, i, fi)
				if row[k] > best {
					best = row[k]
				}
			}
			terms[i] = row
			maxs[i] = best
		}
		t.opt[v] = terms
		t.optMax[v] = maxs
		t.optConst[v] = s.optCutConst(c)
	})
	t.feas = make([][][]float64, len(s.feasCuts))
	t.feasMin = make([][]float64, len(s.feasCuts))
	parallel.For(s.workers, len(s.feasCuts), func(w int) {
		c := s.feasCuts[w]
		terms := make([][]float64, n)
		mins := make([]float64, n)
		for i := 0; i < n; i++ {
			row := make([]float64, len(t.levels[i]))
			best := math.Inf(1)
			for k, fi := range t.levels[i] {
				row[k] = s.feasCutTerm(c, i, fi)
				if row[k] < best {
					best = row[k]
				}
			}
			terms[i] = row
			mins[i] = best
		}
		t.feas[w] = terms
		t.feasMin[w] = mins
	})
	return t
}

// branchBest is the result of searching one shard of the f grid: the
// shard's first (in enumeration order) maximizer and its φ value.
type branchBest struct {
	phi float64
	idx []int
	ok  bool
}

// reduceBranches folds shard results in shard order with the same
// strictly-greater comparison the serial scans use, so the winner is the
// globally first maximizer in serial enumeration order.
func reduceBranches(results []branchBest) ([]int, float64, bool) {
	bestPhi := math.Inf(-1)
	var bestIdx []int
	for _, r := range results {
		if r.ok && r.phi > bestPhi {
			bestPhi = r.phi
			bestIdx = r.idx
		}
	}
	if bestIdx == nil {
		return nil, 0, false
	}
	return bestIdx, bestPhi, true
}

// masterTraversal enumerates the full f grid — the paper's traversal
// method, Θ(m^N) grid points. With more than one worker the grid is
// sharded over the first organization's CPU levels; each shard enumerates
// its sub-grid in serial order, and the shard results reduce in index
// order, so the chosen grid point is byte-identical to the serial scan.
func (s *solver) masterTraversal() ([]float64, float64, bool) {
	t := s.buildTables()
	n := s.cfg.N()
	roots := len(t.levels[0])
	if s.workers <= 1 || n < 2 || roots < 2 {
		return s.masterTraversalSerial(t)
	}
	results := parallel.Map(s.workers, roots, func(root int) branchBest {
		idx := make([]int, n)
		idx[0] = root
		best := branchBest{phi: math.Inf(-1)}
		for {
			if s.gridFeasible(t, idx) {
				phi := s.gridPhi(t, idx)
				if phi > best.phi {
					best.phi = phi
					best.idx = append(best.idx[:0], idx...)
					best.ok = true
				}
			}
			// Advance the mixed-radix counter over organizations 1..n-1.
			i := n - 1
			for i >= 1 {
				idx[i]++
				if idx[i] < len(t.levels[i]) {
					break
				}
				idx[i] = 0
				i--
			}
			if i < 1 {
				break
			}
		}
		return best
	})
	bestIdx, bestPhi, ok := reduceBranches(results)
	if !ok {
		return nil, 0, false
	}
	return s.gridF(t, bestIdx), bestPhi, true
}

// masterTraversalSerial is the single-core full-grid scan.
func (s *solver) masterTraversalSerial(t *cutTables) ([]float64, float64, bool) {
	n := s.cfg.N()
	idx := make([]int, n)
	bestPhi := math.Inf(-1)
	var bestIdx []int
	for {
		if s.gridFeasible(t, idx) {
			phi := s.gridPhi(t, idx)
			if phi > bestPhi {
				bestPhi = phi
				bestIdx = append(bestIdx[:0], idx...)
			}
		}
		// Advance the mixed-radix counter.
		i := n - 1
		for i >= 0 {
			idx[i]++
			if idx[i] < len(t.levels[i]) {
				break
			}
			idx[i] = 0
			i--
		}
		if i < 0 {
			break
		}
	}
	if bestIdx == nil {
		return nil, 0, false
	}
	return s.gridF(t, bestIdx), bestPhi, true
}

// gridFeasible checks all feasibility cuts at a grid point.
func (s *solver) gridFeasible(t *cutTables, idx []int) bool {
	for w := range t.feas {
		var sum float64
		for i, k := range idx {
			sum += t.feas[w][i][k]
		}
		if sum > 1e-12 {
			return false
		}
	}
	return true
}

// gridPhi evaluates min over optimality cuts at a grid point; +Inf with no
// cuts (the master is then unbounded and any feasible point works).
func (s *solver) gridPhi(t *cutTables, idx []int) float64 {
	if len(t.opt) == 0 {
		return math.Inf(1)
	}
	phi := math.Inf(1)
	for v := range t.opt {
		sum := t.optConst[v]
		for i, k := range idx {
			sum += t.opt[v][i][k]
		}
		if sum < phi {
			phi = sum
		}
	}
	return phi
}

func (s *solver) gridF(t *cutTables, idx []int) []float64 {
	f := make([]float64, len(idx))
	for i, k := range idx {
		f[i] = t.levels[i][k]
	}
	return f
}

// boundSuffixes precomputes suffix sums of per-organization extrema so the
// depth-first search completes partial sums to optimistic bounds in O(1).
type boundSuffixes struct {
	// opt[v][i] = Σ_{j≥i} optMax[v][j]; feas[w][i] = Σ_{j≥i} feasMin[w][j].
	opt, feas [][]float64
}

func newBoundSuffixes(t *cutTables, n int) *boundSuffixes {
	b := &boundSuffixes{
		opt:  make([][]float64, len(t.opt)),
		feas: make([][]float64, len(t.feas)),
	}
	for v := range t.opt {
		suf := make([]float64, n+1)
		for i := n - 1; i >= 0; i-- {
			suf[i] = suf[i+1] + t.optMax[v][i]
		}
		b.opt[v] = suf
	}
	for w := range t.feas {
		suf := make([]float64, n+1)
		for i := n - 1; i >= 0; i-- {
			suf[i] = suf[i+1] + t.feasMin[w][i]
		}
		b.feas[w] = suf
	}
	return b
}

// prunedSearch is the reusable depth-first search state of masterPruned.
// Each worker owns one instance; only the shared incumbent bound crosses
// goroutines.
//
// Partial sums are kept per depth (opt[d][v] is the sum after assigning
// organizations < d) and each level is computed fresh as parent + term —
// never by subtracting on backtrack — so the value at a node is a pure
// function of the path to it. This keeps shard arithmetic byte-identical
// to the serial search (an add/subtract scheme would leak floating-point
// residue from sibling branches into later sums) and removes the drift
// the subtraction itself introduced.
type prunedSearch struct {
	t   *cutTables
	suf *boundSuffixes
	n   int
	// shared is the cross-shard incumbent φ bound; nil in the serial path.
	shared *parallel.MaxFloat64

	idx []int
	// opt[d][v], feas[d][w]: cut partial sums after assigning orgs < d.
	opt, feas [][]float64
	bestPhi   float64
	bestIdx   []int
}

func newPrunedSearch(t *cutTables, suf *boundSuffixes, n int, shared *parallel.MaxFloat64) *prunedSearch {
	ps := &prunedSearch{
		t:       t,
		suf:     suf,
		n:       n,
		shared:  shared,
		idx:     make([]int, n),
		opt:     make([][]float64, n+1),
		feas:    make([][]float64, n+1),
		bestPhi: math.Inf(-1),
	}
	for d := 0; d <= n; d++ {
		ps.opt[d] = make([]float64, len(t.opt))
		ps.feas[d] = make([]float64, len(t.feas))
	}
	for v := range t.opt {
		ps.opt[0][v] = t.optConst[v]
	}
	return ps
}

// assign sets organization depth to level k, deriving the next depth's
// partial sums from the current ones.
func (ps *prunedSearch) assign(depth, k int) {
	ps.idx[depth] = k
	for v, cur := range ps.opt[depth] {
		ps.opt[depth+1][v] = cur + ps.t.opt[v][depth][k]
	}
	for w, cur := range ps.feas[depth] {
		ps.feas[depth+1][w] = cur + ps.t.feas[w][depth][k]
	}
}

// dfs explores the subtree rooted at depth. Pruning is two-fold:
// feasibility cuts that cannot return below zero kill the subtree, and the
// optimistic completion of min-over-cuts prunes against the incumbent —
// the local one with ≤ (matching the serial first-maximizer tie-break
// within a shard) and the shared cross-shard bound with strict <, so a
// shard never discards a point that ties the global optimum and the
// shard-order reduction reproduces the serial tie-break exactly.
func (ps *prunedSearch) dfs(depth int) {
	for w, cur := range ps.feas[depth] {
		if cur+ps.suf.feas[w][depth] > 1e-12 {
			return
		}
	}
	if len(ps.t.opt) > 0 {
		bound := math.Inf(1)
		for v, cur := range ps.opt[depth] {
			if b := cur + ps.suf.opt[v][depth]; b < bound {
				bound = b
			}
		}
		if bound <= ps.bestPhi {
			return
		}
		if ps.shared != nil && bound < ps.shared.Load() {
			return
		}
	}
	if depth == ps.n {
		phi := math.Inf(1)
		for _, cur := range ps.opt[depth] {
			if cur < phi {
				phi = cur
			}
		}
		if phi > ps.bestPhi {
			ps.bestPhi = phi
			ps.bestIdx = append(ps.bestIdx[:0], ps.idx...)
			if ps.shared != nil {
				ps.shared.Update(phi)
			}
		}
		return
	}
	for k := range ps.t.levels[depth] {
		ps.assign(depth, k)
		ps.dfs(depth + 1)
	}
}

// masterPruned runs exact depth-first search with bound pruning. With more
// than one worker the tree is sharded at the root over the first
// organization's CPU levels: every shard searches its subtree with a
// private incumbent plus a shared atomic bound (published maxima from all
// shards) so pruning stays effective across workers, and shard results
// reduce in root order — the returned grid point is byte-identical to the
// serial search for every worker count.
func (s *solver) masterPruned() ([]float64, float64, bool) {
	t := s.buildTables()
	n := s.cfg.N()
	suf := newBoundSuffixes(t, n)
	roots := len(t.levels[0])
	if s.workers <= 1 || n < 2 || roots < 2 {
		ps := newPrunedSearch(t, suf, n, nil)
		ps.dfs(0)
		if ps.bestIdx == nil {
			return nil, 0, false
		}
		return s.gridF(t, ps.bestIdx), ps.bestPhi, true
	}
	var shared parallel.MaxFloat64
	results := parallel.Map(s.workers, roots, func(root int) branchBest {
		ps := newPrunedSearch(t, suf, n, &shared)
		ps.assign(0, root)
		ps.dfs(1)
		return branchBest{phi: ps.bestPhi, idx: ps.bestIdx, ok: ps.bestIdx != nil}
	})
	bestIdx, bestPhi, ok := reduceBranches(results)
	if !ok {
		return nil, 0, false
	}
	return s.gridF(t, bestIdx), bestPhi, true
}
