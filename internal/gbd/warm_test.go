package gbd

import (
	"reflect"
	"testing"

	"tradefl/internal/game"
)

func warmConfig(t *testing.T, seed int64, n int) *game.Config {
	t.Helper()
	cfg, err := game.DefaultConfig(game.GenOptions{Seed: seed, N: n, NoOrgName: true})
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// requireSameResult asserts bitwise equality of two solver results.
func requireSameResult(t *testing.T, label string, warm, cold *Result) {
	t.Helper()
	if !reflect.DeepEqual(warm, cold) {
		t.Fatalf("%s: warm result differs from cold solve\nwarm: %+v\ncold: %+v", label, warm, cold)
	}
}

// TestSolveWarmResultCache: re-solving the identical instance returns the
// cached Result verbatim, including across byte-identical option knobs
// (Workers, Incremental are excluded from the result key).
func TestSolveWarmResultCache(t *testing.T) {
	cfg := warmConfig(t, 7, 8)
	r1, w, err := SolveWarm(cfg, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, w, err := SolveWarm(cfg, Options{}, w)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("identical re-solve did not hit the warm result cache")
	}
	r3, _, err := SolveWarm(cfg, Options{Workers: 1}, w)
	if err != nil {
		t.Fatal(err)
	}
	if r3 != r1 {
		t.Fatal("Workers is a byte-identical knob; it must not invalidate the result cache")
	}
	// A different epsilon is a different solve.
	r4, _, err := SolveWarm(cfg, Options{Epsilon: 1e-3}, w)
	if err != nil {
		t.Fatal(err)
	}
	if r4 == r1 {
		t.Fatal("changed Epsilon must invalidate the warm result")
	}
}

// TestSolveWarmDriftByteIdentical: an in-place drifted instance (same shape,
// new values) solved on the rebound warm solver must match a cold Solve
// bit for bit.
func TestSolveWarmDriftByteIdentical(t *testing.T) {
	for _, master := range []MasterSolver{MasterPruned, MasterTraversal} {
		cfg := warmConfig(t, 3, 6)
		opts := Options{Master: master}
		_, w, err := SolveWarm(cfg, opts, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Drift the instance in place, campaign-style.
		for i := range cfg.Orgs {
			cfg.Orgs[i].Profitability *= 1.2
			cfg.Orgs[i].DataBits *= 1.05
			cfg.Orgs[i].Samples *= 1.05
		}
		cfg.NormalizeRho(game.DefaultZMargin)

		warm, _, err := SolveWarm(cfg, opts, w)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := Solve(cfg, opts)
		if err != nil {
			t.Fatal(err)
		}
		requireSameResult(t, master.goString(), warm, cold)
	}
}

// TestSolveWarmShapeChange: a warm state from one shape falls back to a
// fresh solver for a different shape and still matches the cold solve.
func TestSolveWarmShapeChange(t *testing.T) {
	a := warmConfig(t, 7, 5)
	b := warmConfig(t, 9, 8)
	_, w, err := SolveWarm(a, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if w.Fits(b) {
		t.Fatal("shape mismatch must not fit")
	}
	warm, _, err := SolveWarm(b, Options{}, w)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Solve(b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "shape-change", warm, cold)
}

// TestSolveWarmSequence: a single warm state driven across a mixed sequence
// of instances (shape reuse, value drift, repeats) matches cold solves at
// every step.
func TestSolveWarmSequence(t *testing.T) {
	seeds := []int64{1, 2, 3, 1, 2}
	var w *Warm
	for step, seed := range seeds {
		cfg := warmConfig(t, seed, 6)
		var warm *Result
		var err error
		warm, w, err = SolveWarm(cfg, Options{}, w)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := Solve(cfg, Options{})
		if err != nil {
			t.Fatal(err)
		}
		requireSameResult(t, "sequence step", warm, cold)
		_ = step
	}
}

// goString labels a master solver in test output.
func (m MasterSolver) goString() string {
	if m == MasterTraversal {
		return "traversal"
	}
	return "pruned"
}
