package gbd

import (
	"errors"
	"math"
	"testing"

	"tradefl/internal/dbr"
	"tradefl/internal/game"
)

func defaultGame(t *testing.T, seed int64) *game.Config {
	t.Helper()
	cfg, err := game.DefaultConfig(game.GenOptions{Seed: seed})
	if err != nil {
		t.Fatalf("DefaultConfig: %v", err)
	}
	return cfg
}

func TestSolveConvergesOnDefaultInstance(t *testing.T) {
	cfg := defaultGame(t, 7)
	res, err := Solve(cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("CGBD did not converge in %d iterations", res.Iterations)
	}
	if err := cfg.ValidProfile(res.Profile); err != nil {
		t.Errorf("CGBD profile violates constraints: %v", err)
	}
	if len(res.LowerBounds) == 0 || len(res.UpperBounds) == 0 {
		t.Error("missing bound traces")
	}
}

func TestBoundsBracketAndTighten(t *testing.T) {
	cfg := defaultGame(t, 3)
	res, err := Solve(cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for k := range res.LowerBounds {
		if k < len(res.UpperBounds) && res.LowerBounds[k] > res.UpperBounds[k]+1e-6 {
			t.Errorf("iteration %d: LB %v above UB %v", k, res.LowerBounds[k], res.UpperBounds[k])
		}
		if k > 0 && res.LowerBounds[k] < res.LowerBounds[k-1]-1e-9 {
			t.Errorf("iteration %d: LB decreased", k)
		}
	}
	for k := 1; k < len(res.UpperBounds); k++ {
		if res.UpperBounds[k] > res.UpperBounds[k-1]+1e-9 {
			t.Errorf("iteration %d: UB increased", k)
		}
	}
}

// TestCGBDPotentialAtLeastDBR checks the paper's Fig. 4 ordering: the
// centralized solver must reach a potential value no worse than distributed
// best response, on several instances.
func TestCGBDPotentialAtLeastDBR(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		cfg := defaultGame(t, seed)
		cres, err := Solve(cfg, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		dres, err := dbr.Solve(cfg, nil, dbr.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		du := cfg.Potential(dres.Profile)
		if cres.Potential < du-1e-4 {
			t.Errorf("seed %d: CGBD potential %v below DBR %v", seed, cres.Potential, du)
		}
	}
}

// TestCGBDIsApproxNash: the CGBD maximizer of the potential must be an
// (approximate) Nash equilibrium of the coopetition game (Theorem 1 +
// [33, Theorem 2.4]).
func TestCGBDIsApproxNash(t *testing.T) {
	cfg := defaultGame(t, 7)
	res, err := Solve(cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep := cfg.CheckNash(res.Profile, 80, 1e-2)
	if !rep.IsNash {
		t.Errorf("CGBD solution not Nash: %v", rep)
	}
}

func TestMasterSolversAgree(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		cfg := defaultGame(t, seed)
		a, err := Solve(cfg, Options{Master: MasterTraversal})
		if err != nil {
			t.Fatalf("seed %d traversal: %v", seed, err)
		}
		b, err := Solve(cfg, Options{Master: MasterPruned})
		if err != nil {
			t.Fatalf("seed %d pruned: %v", seed, err)
		}
		if math.Abs(a.Potential-b.Potential) > 1e-6 {
			t.Errorf("seed %d: traversal %v vs pruned %v", seed, a.Potential, b.Potential)
		}
	}
}

func TestSolveRejectsInvalidConfig(t *testing.T) {
	cfg := defaultGame(t, 1)
	cfg.Accuracy = nil
	if _, err := Solve(cfg, Options{}); err == nil {
		t.Error("Solve accepted invalid config")
	}
}

func TestSolveInfeasibleDeadline(t *testing.T) {
	cfg := defaultGame(t, 1)
	cfg.Deadline = 0.3 // below T1 + T3: nothing is feasible
	_, err := Solve(cfg, Options{})
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestFeasibilityCutsExcludeSlowCPUs(t *testing.T) {
	cfg := defaultGame(t, 2)
	// Tighten the deadline so the slowest level cannot fit even DMin for
	// big datasets, but the fastest can.
	cfg.DMin = 0.8
	cfg.Deadline = 0.5 + 0.8*25e9/5e9*1.05 // fastest level barely fits
	res, err := Solve(cfg, Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if err := cfg.ValidProfile(res.Profile); err != nil {
		t.Errorf("profile infeasible: %v", err)
	}
}

func TestPotentialTraceNondecreasingBest(t *testing.T) {
	cfg := defaultGame(t, 9)
	res, err := Solve(cfg, Options{MaxIter: 10})
	if err != nil {
		t.Fatal(err)
	}
	best := math.Inf(-1)
	for _, v := range res.PotentialTrace {
		if v > best {
			best = v
		}
	}
	if math.Abs(best-res.Potential) > 1e-9 {
		t.Errorf("best trace value %v != reported potential %v", best, res.Potential)
	}
}

func TestLargerCPUGrid(t *testing.T) {
	cfg, err := game.DefaultConfig(game.GenOptions{Seed: 4, CPUSteps: 5, N: 6})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(cfg, Options{Master: MasterPruned})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("did not converge with m=5 grid")
	}
	dres, err := dbr.Solve(cfg, nil, dbr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if du := cfg.Potential(dres.Profile); res.Potential < du-1e-4 {
		t.Errorf("CGBD potential %v below DBR %v on m=5 grid", res.Potential, du)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Epsilon <= 0 || o.MaxIter <= 0 || o.Master == 0 {
		t.Errorf("withDefaults left zero values: %+v", o)
	}
}
