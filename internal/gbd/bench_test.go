package gbd

import (
	"testing"

	"tradefl/internal/game"
)

// BenchmarkPrimal measures one water-fill primal solve at a fixed f-vector
// through both engines. The memoized path answers repeat queries from the
// f-vector cache; steady state must be allocation-free (the b.ReportAllocs
// line is the regression gate — see also TestPrimalMemoHits for the
// equivalence side).
func BenchmarkPrimal(b *testing.B) {
	for _, mode := range []struct {
		name string
		inc  game.Toggle
	}{
		{"incremental=on", game.ToggleOn},
		{"incremental=off", game.ToggleOff},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			cfg, err := game.DefaultConfig(game.GenOptions{Seed: 7, NoOrgName: true})
			if err != nil {
				b.Fatal(err)
			}
			s := newSolver(cfg, Options{Incremental: mode.inc}.withDefaults())
			n := cfg.N()
			f := make([]float64, n)
			fIdx := make([]int, n)
			for i := 0; i < n; i++ {
				levels := cfg.Orgs[i].CPULevels
				fIdx[i] = len(levels) - 1
				f[i] = levels[fIdx[i]]
			}
			if _, _, feasible := s.solvePrimal(f, fIdx); !feasible {
				b.Fatal("primal infeasible at the top CPU levels")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, feasible := s.solvePrimal(f, fIdx); !feasible {
					b.Fatal("primal infeasible")
				}
			}
		})
	}
}
