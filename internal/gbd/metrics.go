package gbd

import "tradefl/internal/obs"

// Telemetry of Algorithm 1. Registered at init so the metric names are
// present (at zero) in /metrics even before the first solver run; every
// update on the solve path is a single atomic operation.
var (
	mRuns       = obs.NewCounter("tradefl_gbd_runs_total", "CGBD solver runs started")
	mIterations = obs.NewCounter("tradefl_gbd_iterations_total", "CGBD iterations completed across all runs")
	mOptCuts    = obs.NewCounter("tradefl_gbd_optimality_cuts_total", "optimality cuts added to the master problem")
	mFeasCuts   = obs.NewCounter("tradefl_gbd_feasibility_cuts_total", "feasibility cuts added to the master problem")
	mConverged  = obs.NewCounter("tradefl_gbd_converged_total", "CGBD runs that reached UB-LB <= epsilon")
	mGap        = obs.NewGauge("tradefl_gbd_bound_gap", "UB-LB optimality gap at exit of the last CGBD run")
	mPotential  = obs.NewGauge("tradefl_gbd_potential", "potential U at the incumbent of the last CGBD run")
	mWelfare    = obs.NewGauge("tradefl_gbd_social_welfare", "social welfare at the solution of the last CGBD run")
	mPrimalSec  = obs.NewHistogram("tradefl_gbd_primal_seconds", "wall time of primal problem (19) solves", obs.TimeBuckets)
	mMasterSec  = obs.NewHistogram("tradefl_gbd_master_seconds", "wall time of master problem (23) solves", obs.TimeBuckets)
	mFeasSec    = obs.NewHistogram("tradefl_gbd_feasibility_seconds", "wall time of feasibility-check problem (21) solves", obs.TimeBuckets)
	mSolveSec   = obs.NewHistogram("tradefl_gbd_solve_seconds", "end-to-end wall time of CGBD runs", obs.TimeBuckets)

	// Convergence distributions across solves — the fleet-wide view of the
	// paper's bound-sandwich guarantee (exit gap, iterations to converge,
	// welfare attained), complementing the last-run gauges above.
	mGapHist = obs.NewHistogram("tradefl_gbd_exit_gap", "distribution of UB-LB at CGBD exit",
		obs.ExpBuckets(1e-9, 10, 14))
	mItersHist = obs.NewHistogram("tradefl_gbd_iterations_per_solve", "distribution of CGBD iterations per solve",
		[]float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64})
	mWelfareHist = obs.NewHistogram("tradefl_gbd_welfare_per_solve", "distribution of social welfare at CGBD solutions",
		obs.ExpBuckets(1, 4, 14))
)

// Incremental-engine cache telemetry (tradefl_cache_*): primal-subproblem
// memoization, incremental cut tabulation, and dominated-cut eviction.
var (
	mPrimalHits   = obs.NewCounter("tradefl_cache_primal_hits_total", "primal subproblems served from the f-vector memo")
	mPrimalMisses = obs.NewCounter("tradefl_cache_primal_misses_total", "primal subproblems solved fresh and memoized")
	mPrimalEvicts = obs.NewCounter("tradefl_cache_primal_evictions_total", "memoized primal subproblems evicted (FIFO, capacity bound)")
	mCutTabIncr   = obs.NewCounter("tradefl_cache_cut_tables_incremental_total", "cuts tabulated incrementally into the persistent master tables")
	mCutTabFull   = obs.NewCounter("tradefl_cache_cut_tables_rebuilt_total", "full master-table rebuilds (naive path: every master call)")
	mCutsEvicted  = obs.NewCounter("tradefl_cache_cuts_evicted_total", "optimality cuts dropped as strictly dominated by another cut")
	mMasterSeeded = obs.NewCounter("tradefl_cache_master_seeds_total", "master searches seeded with the incumbent lower bound")
	mMasterWarm   = obs.NewCounter("tradefl_cache_master_warm_starts_total", "master searches warm-started from the previous argmax grid point")
	mWarmResults  = obs.NewCounter("tradefl_cache_gbd_warm_results_total", "CGBD solves served verbatim from a warm result (unchanged instance)")
	mWarmScratch  = obs.NewCounter("tradefl_cache_gbd_warm_scratch_total", "CGBD solves that rebound a shape-matched warm solver's allocations")
)
