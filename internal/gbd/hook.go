package gbd

import (
	"sync/atomic"

	"tradefl/internal/game"
)

// AuditFunc observes every completed Solve: the validated config, the
// final result, and the resolved options (defaults applied, so Epsilon is
// the effective ε). internal/verify installs one to audit the CGBD
// invariants — bound sandwiching, incumbent monotonicity, the ε-Nash
// guarantee — without this package importing the auditor.
type AuditFunc func(cfg *game.Config, res *Result, opts Options)

// auditHook holds the installed AuditFunc (possibly a nil function value;
// atomic.Value cannot store untyped nil).
var auditHook atomic.Value

// SetAuditHook installs fn as the post-Solve audit observer; nil removes
// it. The hook runs synchronously on the solving goroutine after the
// result is fully assembled, so it must not call Solve re-entrantly.
func SetAuditHook(fn AuditFunc) { auditHook.Store(fn) }

// audit invokes the installed hook, if any.
func audit(cfg *game.Config, res *Result, opts Options) {
	if fn, _ := auditHook.Load().(AuditFunc); fn != nil {
		fn(cfg, res, opts)
	}
}
