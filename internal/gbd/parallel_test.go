package gbd

import (
	"testing"

	"tradefl/internal/game"
)

// TestSolveParallelEquivalence checks the determinism contract of the
// parallel master search: for every worker count the solver must produce
// byte-identical profiles, potentials and convergence traces, because
// shards enumerate in serial order and reduce with the serial tie-break.
func TestSolveParallelEquivalence(t *testing.T) {
	for _, master := range []struct {
		name string
		m    MasterSolver
	}{
		{"traversal", MasterTraversal},
		{"pruned", MasterPruned},
	} {
		t.Run(master.name, func(t *testing.T) {
			for seed := int64(1); seed <= 6; seed++ {
				cfg, err := game.DefaultConfig(game.GenOptions{Seed: seed, NoOrgName: true})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				serial, serr := Solve(cfg, Options{Master: master.m, Workers: 1})
				for _, workers := range []int{2, 3, 8} {
					par, perr := Solve(cfg, Options{Master: master.m, Workers: workers})
					if (serr == nil) != (perr == nil) {
						t.Fatalf("seed %d workers %d: error mismatch serial=%v parallel=%v", seed, workers, serr, perr)
					}
					if serr != nil {
						continue
					}
					if par.Potential != serial.Potential {
						t.Fatalf("seed %d workers %d: potential %v != serial %v", seed, workers, par.Potential, serial.Potential)
					}
					if len(par.Profile) != len(serial.Profile) {
						t.Fatalf("seed %d workers %d: profile length mismatch", seed, workers)
					}
					for i := range par.Profile {
						if par.Profile[i] != serial.Profile[i] {
							t.Fatalf("seed %d workers %d: profile[%d] = %+v != serial %+v",
								seed, workers, i, par.Profile[i], serial.Profile[i])
						}
					}
					if par.Iterations != serial.Iterations || par.Converged != serial.Converged {
						t.Fatalf("seed %d workers %d: trace shape mismatch (%d,%v) != (%d,%v)",
							seed, workers, par.Iterations, par.Converged, serial.Iterations, serial.Converged)
					}
					for name, pair := range map[string][2][]float64{
						"lower":     {par.LowerBounds, serial.LowerBounds},
						"upper":     {par.UpperBounds, serial.UpperBounds},
						"potential": {par.PotentialTrace, serial.PotentialTrace},
					} {
						if len(pair[0]) != len(pair[1]) {
							t.Fatalf("seed %d workers %d: %s trace length %d != %d",
								seed, workers, name, len(pair[0]), len(pair[1]))
						}
						for k := range pair[0] {
							if pair[0][k] != pair[1][k] {
								t.Fatalf("seed %d workers %d: %s trace[%d] = %v != %v",
									seed, workers, name, k, pair[0][k], pair[1][k])
							}
						}
					}
				}
			}
		})
	}
}
