package gbd

import (
	"math"
	"testing"

	"tradefl/internal/game"
)

// gbdGames yields CGBD instances across sizes, grid densities and
// competition intensities for the incremental-engine equivalence suite
// (CGBD rejects the personalization extension, so only the base model).
func gbdGames(t *testing.T) []*game.Config {
	t.Helper()
	var cfgs []*game.Config
	for _, gen := range []game.GenOptions{
		{Seed: 7},
		{Seed: 3, N: 4, CPUSteps: 5},
		{Seed: 11, N: 6, Mu: 0.9},
	} {
		cfg, err := game.DefaultConfig(gen)
		if err != nil {
			t.Fatalf("DefaultConfig(%+v): %v", gen, err)
		}
		cfgs = append(cfgs, cfg)
	}
	return cfgs
}

// assertEquivalent checks the on/off results agree on everything the
// exactness contract covers. The incumbent-seeded master may suppress the
// final iteration's maximum when no grid point beats the incumbent, so the
// LAST UpperBounds entry is allowed to differ (both runs have already
// converged on the same incumbent at that point); every other trace entry
// and the solution itself must be bitwise identical.
func assertEquivalent(t *testing.T, on, off *Result, label string) {
	t.Helper()
	if on.Iterations != off.Iterations || on.Converged != off.Converged {
		t.Fatalf("%s: control flow diverged: on=(%d,%v) off=(%d,%v)",
			label, on.Iterations, on.Converged, off.Iterations, off.Converged)
	}
	for i := range on.Profile {
		if on.Profile[i] != off.Profile[i] {
			t.Fatalf("%s: profile[%d] diverged: on=%+v off=%+v", label, i, on.Profile[i], off.Profile[i])
		}
	}
	if math.Float64bits(on.Potential) != math.Float64bits(off.Potential) {
		t.Fatalf("%s: potential diverged: %x vs %x", label,
			math.Float64bits(on.Potential), math.Float64bits(off.Potential))
	}
	if len(on.LowerBounds) != len(off.LowerBounds) || len(on.UpperBounds) != len(off.UpperBounds) {
		t.Fatalf("%s: trace lengths diverged", label)
	}
	for k := range on.LowerBounds {
		if math.Float64bits(on.LowerBounds[k]) != math.Float64bits(off.LowerBounds[k]) {
			t.Fatalf("%s: LowerBounds[%d] diverged: %x vs %x", label, k,
				math.Float64bits(on.LowerBounds[k]), math.Float64bits(off.LowerBounds[k]))
		}
	}
	for k := range on.UpperBounds {
		if k == len(on.UpperBounds)-1 {
			continue
		}
		if math.Float64bits(on.UpperBounds[k]) != math.Float64bits(off.UpperBounds[k]) {
			t.Fatalf("%s: UpperBounds[%d] diverged: %x vs %x", label, k,
				math.Float64bits(on.UpperBounds[k]), math.Float64bits(off.UpperBounds[k]))
		}
	}
	for k := range on.PotentialTrace {
		if math.Float64bits(on.PotentialTrace[k]) != math.Float64bits(off.PotentialTrace[k]) {
			t.Fatalf("%s: PotentialTrace[%d] diverged", label, k)
		}
	}
}

// TestSolveIncrementalEquivalence is the CGBD A/B: with the engine on
// (memoized primals, cached cut tables, seeded masters) and off, both
// master solvers must deliver bitwise-identical solutions and traces.
func TestSolveIncrementalEquivalence(t *testing.T) {
	for _, cfg := range gbdGames(t) {
		for _, master := range []MasterSolver{MasterTraversal, MasterPruned} {
			on, err := Solve(cfg, Options{Master: master, Incremental: game.ToggleOn})
			if err != nil {
				t.Fatalf("Solve(on, master=%v): %v", master, err)
			}
			off, err := Solve(cfg, Options{Master: master, Incremental: game.ToggleOff})
			if err != nil {
				t.Fatalf("Solve(off, master=%v): %v", master, err)
			}
			label := "traversal"
			if master == MasterPruned {
				label = "pruned"
			}
			assertEquivalent(t, on, off, label)
		}
	}
}

// TestSolveIncrementalEquivalenceParallel repeats the A/B with a parallel
// master search: sharded seeded searches must still match the naive serial
// reference bit-for-bit.
func TestSolveIncrementalEquivalenceParallel(t *testing.T) {
	cfg := defaultGame(t, 7)
	for _, master := range []MasterSolver{MasterTraversal, MasterPruned} {
		off, err := Solve(cfg, Options{Master: master, Incremental: game.ToggleOff, Workers: 1})
		if err != nil {
			t.Fatalf("Solve(off): %v", err)
		}
		for _, workers := range []int{2, 4} {
			on, err := Solve(cfg, Options{Master: master, Incremental: game.ToggleOn, Workers: workers})
			if err != nil {
				t.Fatalf("Solve(on, workers=%d): %v", workers, err)
			}
			assertEquivalent(t, on, off, "parallel")
		}
	}
}

// TestPrimalMemoHits verifies the f-vector memo actually fires: solving an
// instance whose master revisits f-vectors must record cache hits, and a
// repeated solve must never change the answer.
func TestPrimalMemoHits(t *testing.T) {
	cfg := defaultGame(t, 7)
	before := mPrimalHits.Value() + mPrimalMisses.Value()
	first, err := Solve(cfg, Options{Incremental: game.ToggleOn})
	if err != nil {
		t.Fatal(err)
	}
	after := mPrimalHits.Value() + mPrimalMisses.Value()
	if after == before {
		t.Fatal("incremental solve recorded no primal cache traffic")
	}
	second, err := Solve(cfg, Options{Incremental: game.ToggleOn})
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, first, second, "repeat")
}

// TestCutDomination exercises the domination predicate directly: a cut that
// sits below another by at least the margin at every grid point is
// dominated, identical cuts are not (margin rule), and crossing cuts are
// incomparable in both directions.
func TestCutDomination(t *testing.T) {
	terms := [][]float64{{0, 1}, {2, 3}}
	if !cutDominates(terms, 1, terms, 2) {
		t.Fatal("a cut should dominate a shifted-up copy of itself")
	}
	if cutDominates(terms, 1, terms, 1) {
		t.Fatal("a cut must not dominate an identical copy (margin rule)")
	}
	if cutDominates(terms, 1-5e-7, terms, 1) {
		t.Fatal("a gap inside the 1e-6 margin must not count as domination")
	}
	crossA := [][]float64{{0, 10}}
	crossB := [][]float64{{10, 0}}
	if cutDominates(crossA, 0, crossB, 0) || cutDominates(crossB, 0, crossA, 0) {
		t.Fatal("crossing cuts must be incomparable")
	}
}
