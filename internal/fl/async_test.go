package fl

import (
	"strings"
	"testing"
)

func asyncFixture(t *testing.T) AsyncConfig {
	t.Helper()
	base := fixture(t, "fmnist", []int{250, 250, 250})
	return AsyncConfig{
		Config:     base,
		RoundTimes: []float64{1.0, 1.5, 3.0}, // org 0 updates 3× as often as org 2
		Horizon:    30,
	}
}

func TestRunAsyncImprovesModel(t *testing.T) {
	cfg := asyncFixture(t)
	res, err := RunAsync(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) < 10 {
		t.Fatalf("history has %d evaluations, want ≥ 10", len(res.History))
	}
	if res.FinalLoss >= res.History[0].Loss {
		t.Errorf("async loss did not improve: %v -> %v", res.History[0].Loss, res.FinalLoss)
	}
	if res.FinalAccuracy < 0.3 {
		t.Errorf("async accuracy %v too low", res.FinalAccuracy)
	}
	if res.TotalSamples != 750 {
		t.Errorf("TotalSamples = %d, want 750", res.TotalSamples)
	}
}

func TestRunAsyncComparableToSync(t *testing.T) {
	cfg := asyncFixture(t)
	async, err := RunAsync(cfg)
	if err != nil {
		t.Fatal(err)
	}
	syncCfg := cfg.Config
	syncCfg.Rounds = 10
	syncRes, err := Run(syncCfg)
	if err != nil {
		t.Fatal(err)
	}
	// Async with staleness discounting should land in the same quality
	// ballpark as synchronous FedAvg (footnote 2's claim that the
	// mechanism is agnostic to the training discipline).
	if async.FinalAccuracy < syncRes.FinalAccuracy-0.15 {
		t.Errorf("async accuracy %v far below sync %v", async.FinalAccuracy, syncRes.FinalAccuracy)
	}
}

func TestRunAsyncValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*AsyncConfig)
		want   string
	}{
		{"round time count", func(c *AsyncConfig) { c.RoundTimes = c.RoundTimes[:1] }, "round times"},
		{"zero round time", func(c *AsyncConfig) { c.RoundTimes[0] = 0 }, "round time"},
		{"zero horizon", func(c *AsyncConfig) { c.Horizon = 0 }, "horizon"},
		{"horizon below cadence", func(c *AsyncConfig) { c.Horizon = 0.5 }, "horizon"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := asyncFixture(t)
			cfg.RoundTimes = append([]float64(nil), cfg.RoundTimes...)
			tt.mutate(&cfg)
			_, err := RunAsync(cfg)
			if err == nil {
				t.Fatal("invalid config accepted")
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not mention %q", err, tt.want)
			}
		})
	}
}

func TestRunAsyncZeroContributorSkipped(t *testing.T) {
	cfg := asyncFixture(t)
	cfg.Fractions = []float64{1, 0, 1}
	res, err := RunAsync(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSamples != 500 {
		t.Errorf("TotalSamples = %d, want 500", res.TotalSamples)
	}
}

func TestRunAsyncDeterministic(t *testing.T) {
	cfg := asyncFixture(t)
	a, err := RunAsync(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunAsync(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.FinalLoss != b.FinalLoss {
		t.Error("async training not deterministic")
	}
}

func TestRunAsyncFasterOrgsDominateEarly(t *testing.T) {
	// With a very slow large org and a fast small org, early evaluations
	// must already show learning (driven by the fast org's updates).
	base := fixture(t, "fmnist", []int{400, 400})
	cfg := AsyncConfig{
		Config:     base,
		RoundTimes: []float64{1, 25},
		Horizon:    50,
	}
	res, err := RunAsync(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mid := res.History[len(res.History)/2]
	if mid.Accuracy <= 0.15 {
		t.Errorf("mid-horizon accuracy %v at chance: fast org's updates not applied", mid.Accuracy)
	}
}
