package fl

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"tradefl/internal/fl/dataset"
	"tradefl/internal/fl/model"
)

// Asynchronous federated training (footnote 2 of the paper: "TradeFL is
// applicable to both synchronous and asynchronous scenarios. It focuses on
// resource contribution without making assumptions about the asynchronicity
// of the training process.").
//
// In the asynchronous mode each organization trains at its own cadence —
// derived from its per-round wall-clock time — and the server merges each
// update the moment it arrives, discounted by its staleness (the number of
// server versions that elapsed since the organization pulled the model), a
// FedAsync-style rule:
//
//	w ← (1−η_s)·w + η_s·w_i,   η_s = weight_i · 1/(1+staleness)^κ.

// AsyncConfig extends Config with the asynchronous schedule.
type AsyncConfig struct {
	Config
	// RoundTimes gives each organization's local round duration in
	// arbitrary time units; faster organizations deliver more updates.
	// Length must match Shards.
	RoundTimes []float64
	// Horizon is the simulated wall-clock length in the same units.
	Horizon float64
	// StalenessExponent is κ of the staleness discount (default 0.5).
	StalenessExponent float64
	// Evaluations is the number of evenly spaced test evaluations
	// recorded over the horizon (default 10).
	Evaluations int
}

// asyncEvent is one organization's scheduled update arrival.
type asyncEvent struct {
	at  float64
	org int
}

// RunAsync executes asynchronous federated training and returns per-
// evaluation metrics. The strategy surface TradeFL controls — how much
// data each organization contributes — is identical to the synchronous
// Run; only the aggregation discipline changes.
func RunAsync(cfg AsyncConfig) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(cfg.RoundTimes) != len(cfg.Shards) {
		return nil, fmt.Errorf("fl async: %d round times for %d shards", len(cfg.RoundTimes), len(cfg.Shards))
	}
	for i, rt := range cfg.RoundTimes {
		if rt <= 0 {
			return nil, fmt.Errorf("fl async: round time %d must be positive, got %v", i, rt)
		}
	}
	if cfg.Horizon <= 0 {
		return nil, errors.New("fl async: horizon must be positive")
	}
	if cfg.StalenessExponent == 0 {
		cfg.StalenessExponent = 0.5
	}
	if cfg.Evaluations <= 0 {
		cfg.Evaluations = 10
	}

	global, err := model.NewForArch(cfg.Test.Dim(), cfg.Test.Classes, cfg.Arch, cfg.Seed)
	if err != nil {
		return nil, err
	}
	subsets := make([]*subsetState, len(cfg.Shards))
	var weightSum float64
	var totalSamples int
	for i := range cfg.Shards {
		sub, err := cfg.contributed(i)
		if err != nil {
			return nil, fmt.Errorf("org %d: %w", i, err)
		}
		if sub == nil {
			continue
		}
		subsets[i] = &subsetState{data: sub, pulledVersion: 0, snapshot: global.Clone()}
		weightSum += float64(sub.Len())
		totalSamples += sub.Len()
	}
	if weightSum == 0 {
		return nil, errors.New("fl: no organization contributes any data")
	}

	// Build the arrival schedule: org i delivers at k·RoundTimes[i].
	var events []asyncEvent
	for i, st := range subsets {
		if st == nil {
			continue
		}
		for at := cfg.RoundTimes[i]; at <= cfg.Horizon; at += cfg.RoundTimes[i] {
			events = append(events, asyncEvent{at: at, org: i})
		}
	}
	sortEvents(events)
	if len(events) == 0 {
		return nil, errors.New("fl async: horizon shorter than every round time")
	}

	mRuns.Inc()
	res := &Result{TotalSamples: totalSamples}
	evalEvery := cfg.Horizon / float64(cfg.Evaluations)
	nextEval := evalEvery
	version := 0
	record := func(round int) error {
		loss, err := global.Loss(cfg.Test)
		if err != nil {
			return err
		}
		acc, err := global.Accuracy(cfg.Test)
		if err != nil {
			return err
		}
		res.History = append(res.History, RoundMetrics{Round: round, Loss: loss, Accuracy: acc})
		mRounds.Inc()
		mAccuracy.Set(acc)
		mLoss.Set(loss)
		return nil
	}
	for _, ev := range events {
		for ev.at > nextEval+1e-9 {
			if err := record(len(res.History) + 1); err != nil {
				return nil, err
			}
			nextEval += evalEvery
		}
		st := subsets[ev.org]
		// Train the snapshot the organization pulled earlier.
		local := st.snapshot
		if _, err := local.TrainEpochs(st.data, cfg.LocalEpochs, cfg.Arch.LearningRate, cfg.Arch.BatchSize); err != nil {
			return nil, fmt.Errorf("org %d: %w", ev.org, err)
		}
		staleness := float64(version - st.pulledVersion)
		eta := float64(st.data.Len()) / weightSum / math.Pow(1+staleness, cfg.StalenessExponent)
		if eta > 1 {
			eta = 1
		}
		gp := global.Params()
		for k, lp := range local.Params() {
			gp[k].Scale(1 - eta)
			if err := gp[k].AXPY(eta, lp); err != nil {
				return nil, err
			}
		}
		version++
		mUpdates.Inc()
		// The organization pulls the fresh model for its next cadence.
		st.snapshot = global.Clone()
		st.pulledVersion = version
	}
	for len(res.History) < cfg.Evaluations {
		if err := record(len(res.History) + 1); err != nil {
			return nil, err
		}
	}
	last := res.History[len(res.History)-1]
	res.FinalLoss = last.Loss
	res.FinalAccuracy = last.Accuracy
	publishHistory(res.History)
	return res, nil
}

// subsetState tracks one organization's async progress.
type subsetState struct {
	data          *dataset.Dataset
	pulledVersion int
	snapshot      *model.MLP
}

// sortEvents orders arrivals by time, breaking ties by organization index
// for determinism.
func sortEvents(events []asyncEvent) {
	sort.Slice(events, func(i, j int) bool {
		if events[i].at != events[j].at {
			return events[i].at < events[j].at
		}
		return events[i].org < events[j].org
	})
}
