package fl

import (
	"math"
	"strings"
	"testing"
)

// TestStragglerExcludedAndRenormalized: one organization's round time sits
// past the deadline every round; its update must never enter the aggregate
// and the run must still train to a useful model on the remaining data.
func TestStragglerExcludedAndRenormalized(t *testing.T) {
	cfg := fixture(t, "fmnist", []int{200, 200, 200})
	cfg.RoundTimes = []float64{1, 1, 10}
	cfg.StragglerDeadline = 2 // org 2 is always late; no jitter
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := cfg.Rounds; res.Stragglers != want {
		t.Errorf("Stragglers = %d, want %d (org 2 late every round)", res.Stragglers, want)
	}
	if res.DegradedRounds != 0 {
		t.Errorf("DegradedRounds = %d, want 0", res.DegradedRounds)
	}
	for _, h := range res.History {
		if h.Arrived != 2 {
			t.Errorf("round %d: Arrived = %d, want 2", h.Round, h.Arrived)
		}
		if h.Degraded {
			t.Errorf("round %d marked degraded", h.Round)
		}
	}
	if res.FinalAccuracy < 0.3 {
		t.Errorf("final accuracy %v too low with one straggler excluded", res.FinalAccuracy)
	}
	// With org 2 excluded, the run is exactly a 2-org run over the same
	// seed and data: FedAvg renormalization over arrivals must reproduce it.
	two := fixture(t, "fmnist", []int{200, 200, 200})
	two.Fractions[2] = 0 // same shards, org 2 contributes nothing
	ref, err := Run(two)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(res.FinalLoss - ref.FinalLoss); d > 1e-9 {
		t.Errorf("straggler-excluded run diverged from 2-org reference: loss gap %v", d)
	}
}

// TestAllStragglersDegradesGracefully: when no update ever meets the
// deadline the run keeps the initial global model round after round
// instead of failing.
func TestAllStragglersDegradesGracefully(t *testing.T) {
	cfg := fixture(t, "fmnist", []int{100, 100})
	cfg.Rounds = 3
	cfg.RoundTimes = []float64{5, 7}
	cfg.StragglerDeadline = 1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DegradedRounds != cfg.Rounds {
		t.Errorf("DegradedRounds = %d, want %d", res.DegradedRounds, cfg.Rounds)
	}
	if res.Stragglers != cfg.Rounds*2 {
		t.Errorf("Stragglers = %d, want %d", res.Stragglers, cfg.Rounds*2)
	}
	for _, h := range res.History {
		if !h.Degraded || h.Arrived != 0 {
			t.Errorf("round %d: Degraded=%v Arrived=%d, want degraded with 0 arrivals", h.Round, h.Degraded, h.Arrived)
		}
	}
	// The model never moved: every round evaluates identically.
	for _, h := range res.History[1:] {
		if h.Loss != res.History[0].Loss {
			t.Errorf("round %d loss %v differs from round 1 %v despite no updates", h.Round, h.Loss, res.History[0].Loss)
		}
	}
}

// TestStragglerScheduleDeterministic: equal seeds produce identical
// straggler schedules and losses; a different seed reshuffles the jitter.
func TestStragglerScheduleDeterministic(t *testing.T) {
	mk := func(seed int64) Config {
		cfg := fixture(t, "fmnist", []int{150, 150, 150})
		cfg.Rounds = 4
		cfg.Seed = seed
		cfg.RoundTimes = []float64{1, 1.9, 2.1}
		cfg.StragglerDeadline = 2
		cfg.StragglerJitter = 0.3
		return cfg
	}
	a, err := Run(mk(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(mk(5))
	if err != nil {
		t.Fatal(err)
	}
	if a.Stragglers == 0 {
		t.Error("jittered borderline schedule produced no stragglers")
	}
	if a.Stragglers != b.Stragglers || a.FinalLoss != b.FinalLoss {
		t.Errorf("same seed diverged: stragglers %d/%d, loss %v/%v",
			a.Stragglers, b.Stragglers, a.FinalLoss, b.FinalLoss)
	}
	for i := range a.History {
		if a.History[i].Arrived != b.History[i].Arrived {
			t.Errorf("round %d arrivals differ across identical seeds", i+1)
		}
	}
}

// TestStragglerConfigValidation covers the new validation paths.
func TestStragglerConfigValidation(t *testing.T) {
	base := fixture(t, "fmnist", []int{50, 50})
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"negative deadline", func(c *Config) { c.StragglerDeadline = -1 }, "must not be negative"},
		{"missing round times", func(c *Config) { c.StragglerDeadline = 1 }, "round times"},
		{"bad round time", func(c *Config) { c.StragglerDeadline = 1; c.RoundTimes = []float64{1, 0} }, "must be positive"},
		{"bad jitter", func(c *Config) {
			c.StragglerDeadline = 1
			c.RoundTimes = []float64{1, 1}
			c.StragglerJitter = 1.5
		}, "jitter"},
	}
	for _, tc := range cases {
		cfg := base
		tc.mut(&cfg)
		_, err := Run(cfg)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}
