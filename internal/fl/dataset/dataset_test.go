package dataset

import (
	"testing"
)

func TestSpecsRegistry(t *testing.T) {
	specs := Specs()
	if len(specs) != 4 {
		t.Fatalf("got %d specs, want 4", len(specs))
	}
	names := map[string]bool{}
	for _, s := range specs {
		names[s.Name] = true
		if s.Classes != 10 {
			t.Errorf("%s: classes = %d, want 10", s.Name, s.Classes)
		}
		if s.Noise <= 0 || s.Dim <= 0 {
			t.Errorf("%s: invalid spec %+v", s.Name, s)
		}
	}
	for _, want := range []string{"cifar10", "fmnist", "svhn", "eurosat"} {
		if !names[want] {
			t.Errorf("missing dataset %q", want)
		}
	}
}

func TestSpecByName(t *testing.T) {
	if _, err := SpecByName("imagenet"); err == nil {
		t.Error("SpecByName accepted unknown name")
	}
	s, err := SpecByName("svhn")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "svhn" {
		t.Errorf("got %q", s.Name)
	}
}

func TestGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(Spec{Dim: 0, Classes: 10, Noise: 1}, 1); err == nil {
		t.Error("accepted zero dim")
	}
	if _, err := NewGenerator(Spec{Dim: 4, Classes: 1, Noise: 1}, 1); err == nil {
		t.Error("accepted single class")
	}
	if _, err := NewGenerator(Spec{Dim: 4, Classes: 3, Noise: 0}, 1); err == nil {
		t.Error("accepted zero noise")
	}
}

func TestSampleShapeAndBalance(t *testing.T) {
	spec, _ := SpecByName("fmnist")
	g, err := NewGenerator(spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	d, err := g.Sample(1000)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1000 || d.Dim() != spec.Dim || d.Classes != 10 {
		t.Fatalf("bad shape: len=%d dim=%d classes=%d", d.Len(), d.Dim(), d.Classes)
	}
	for c, n := range d.ClassBalance() {
		if n != 100 {
			t.Errorf("class %d has %d samples, want 100 (round-robin)", c, n)
		}
	}
	if _, err := g.Sample(0); err == nil {
		t.Error("Sample(0) accepted")
	}
}

func TestSamplesAreShuffled(t *testing.T) {
	spec, _ := SpecByName("fmnist")
	g, _ := NewGenerator(spec, 42)
	d, _ := g.Sample(100)
	// Round-robin without shuffling would give label sequence 0,1,2,...;
	// verify the sequence deviates.
	sequential := true
	for i, y := range d.Y {
		if y != i%10 {
			sequential = false
			break
		}
	}
	if sequential {
		t.Error("samples not shuffled")
	}
}

func TestDeterministicGeneration(t *testing.T) {
	spec, _ := SpecByName("cifar10")
	g1, _ := NewGenerator(spec, 7)
	g2, _ := NewGenerator(spec, 7)
	a, _ := g1.Sample(50)
	b, _ := g2.Sample(50)
	for i := range a.X.Data {
		if a.X.Data[i] != b.X.Data[i] {
			t.Fatal("same seed produced different data")
		}
	}
}

func TestPartition(t *testing.T) {
	spec, _ := SpecByName("svhn")
	g, _ := NewGenerator(spec, 9)
	shards, err := g.Partition([]int{100, 200, 300})
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 3 {
		t.Fatalf("got %d shards", len(shards))
	}
	for i, want := range []int{100, 200, 300} {
		if shards[i].Len() != want {
			t.Errorf("shard %d has %d samples, want %d", i, shards[i].Len(), want)
		}
	}
	if _, err := g.Partition([]int{100, 0}); err == nil {
		t.Error("Partition accepted zero-size shard")
	}
}

func TestSubset(t *testing.T) {
	spec, _ := SpecByName("eurosat")
	g, _ := NewGenerator(spec, 3)
	d, _ := g.Sample(100)
	s, err := d.Subset(30)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 30 || s.Dim() != d.Dim() {
		t.Errorf("subset shape wrong: %d×%d", s.Len(), s.Dim())
	}
	if _, err := d.Subset(0); err == nil {
		t.Error("Subset(0) accepted")
	}
	if _, err := d.Subset(101); err == nil {
		t.Error("oversized Subset accepted")
	}
}

func TestNamesSorted(t *testing.T) {
	names := Names()
	if len(names) != 4 {
		t.Fatalf("got %d names", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Errorf("names not sorted: %v", names)
		}
	}
}

func TestDifficultyOrdering(t *testing.T) {
	// Harder datasets must have more within-class noise relative to
	// separation: cifar10 > svhn > eurosat > fmnist.
	get := func(name string) Spec {
		s, err := SpecByName(name)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	order := []string{"fmnist", "eurosat", "svhn", "cifar10"}
	for i := 1; i < len(order); i++ {
		a, b := get(order[i-1]), get(order[i])
		if b.Noise/b.Separation <= a.Noise/a.Separation {
			t.Errorf("%s should be harder than %s", order[i], order[i-1])
		}
	}
}
