package dataset

import (
	"math"
	"testing"
)

func TestPartitionNonIIDShapes(t *testing.T) {
	spec, _ := SpecByName("fmnist")
	g, err := NewGenerator(spec, 17)
	if err != nil {
		t.Fatal(err)
	}
	shards, err := g.PartitionNonIID([]int{300, 500}, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 2 || shards[0].Len() != 300 || shards[1].Len() != 500 {
		t.Fatalf("wrong shard shapes")
	}
	for i, s := range shards {
		if s.Dim() != spec.Dim || s.Classes != spec.Classes {
			t.Errorf("shard %d: dim/classes wrong", i)
		}
	}
}

func TestPartitionNonIIDValidation(t *testing.T) {
	spec, _ := SpecByName("fmnist")
	g, _ := NewGenerator(spec, 17)
	if _, err := g.PartitionNonIID([]int{100}, 0); err == nil {
		t.Error("alpha 0 accepted")
	}
	if _, err := g.PartitionNonIID([]int{0}, 0.5); err == nil {
		t.Error("zero shard size accepted")
	}
}

// classImbalance returns the total-variation distance of a shard's label
// distribution from uniform.
func classImbalance(d *Dataset) float64 {
	counts := d.ClassBalance()
	var tv float64
	uniform := 1.0 / float64(d.Classes)
	for _, c := range counts {
		tv += math.Abs(float64(c)/float64(d.Len()) - uniform)
	}
	return tv / 2
}

func TestSmallAlphaSkewsLabels(t *testing.T) {
	spec, _ := SpecByName("svhn")
	g1, _ := NewGenerator(spec, 23)
	skewed, err := g1.PartitionNonIID([]int{2000, 2000, 2000}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := NewGenerator(spec, 23)
	mild, err := g2.PartitionNonIID([]int{2000, 2000, 2000}, 50)
	if err != nil {
		t.Fatal(err)
	}
	var skewTV, mildTV float64
	for i := range skewed {
		skewTV += classImbalance(skewed[i])
		mildTV += classImbalance(mild[i])
	}
	if skewTV <= mildTV {
		t.Errorf("alpha=0.1 imbalance %v not above alpha=50 imbalance %v", skewTV, mildTV)
	}
	// Large alpha is close to uniform.
	if mildTV/3 > 0.1 {
		t.Errorf("alpha=50 shards too skewed: mean TV %v", mildTV/3)
	}
}

func TestNonIIDDeterministic(t *testing.T) {
	spec, _ := SpecByName("eurosat")
	g1, _ := NewGenerator(spec, 31)
	g2, _ := NewGenerator(spec, 31)
	a, err := g1.PartitionNonIID([]int{200}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g2.PartitionNonIID([]int{200}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a[0].Y {
		if a[0].Y[i] != b[0].Y[i] {
			t.Fatal("non-IID partition not deterministic")
		}
	}
}

func TestDirichletSumsToOne(t *testing.T) {
	spec, _ := SpecByName("cifar10")
	g, _ := NewGenerator(spec, 41)
	for _, alpha := range []float64{0.05, 0.5, 1, 5, 100} {
		mix := g.dirichlet(alpha)
		var sum float64
		for _, p := range mix {
			if p < 0 {
				t.Fatalf("alpha %v: negative proportion %v", alpha, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("alpha %v: mix sums to %v", alpha, sum)
		}
	}
}

func TestGammaDrawMoments(t *testing.T) {
	spec, _ := SpecByName("cifar10")
	g, _ := NewGenerator(spec, 43)
	for _, alpha := range []float64{0.5, 1, 2.5, 8} {
		const n = 20000
		var sum float64
		for i := 0; i < n; i++ {
			v := g.gammaDraw(alpha)
			if v < 0 {
				t.Fatalf("alpha %v: negative gamma draw", alpha)
			}
			sum += v
		}
		if mean := sum / n; math.Abs(mean-alpha) > 0.1*alpha+0.05 {
			t.Errorf("alpha %v: mean %v, want ≈%v", alpha, mean, alpha)
		}
	}
}
