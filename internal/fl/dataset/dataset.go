// Package dataset generates the synthetic classification workloads the FL
// simulator trains on. The paper evaluates on CIFAR-10, FMNIST, SVHN and
// EuroSat; those images are not available offline, so we substitute
// class-conditional Gaussian clouds whose dimensionality and class overlap
// are tuned per dataset name to mimic each benchmark's relative difficulty
// (DESIGN.md §2). What the TradeFL experiments consume is only the *shape*
// of accuracy-versus-data — increasing and concave — which this family
// reproduces.
package dataset

import (
	"fmt"
	"math"
	"sort"

	"tradefl/internal/fl/tensor"
	"tradefl/internal/randx"
)

// Dataset is a labeled classification set.
type Dataset struct {
	// X is the (n × Dim) feature matrix.
	X *tensor.Matrix
	// Y holds integer class labels in [0, Classes).
	Y []int
	// Classes is the number of classes.
	Classes int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Y) }

// Dim returns the feature dimensionality.
func (d *Dataset) Dim() int { return d.X.Cols }

// Spec describes a synthetic dataset family.
type Spec struct {
	// Name identifies the family ("cifar10", "fmnist", "svhn", "eurosat").
	Name string
	// Dim is the feature dimensionality.
	Dim int
	// Classes is the number of classes.
	Classes int
	// Noise is the within-class standard deviation; larger is harder.
	Noise float64
	// Separation scales the distance between class means.
	Separation float64
}

// Specs returns the registry of named dataset families, difficulty-ordered
// to mirror the benchmarks: FMNIST easiest, CIFAR-10 hardest.
func Specs() []Spec {
	return []Spec{
		{Name: "fmnist", Dim: 16, Classes: 10, Noise: 0.30, Separation: 1.0},
		{Name: "eurosat", Dim: 20, Classes: 10, Noise: 0.38, Separation: 1.0},
		{Name: "svhn", Dim: 24, Classes: 10, Noise: 0.46, Separation: 1.0},
		{Name: "cifar10", Dim: 32, Classes: 10, Noise: 0.55, Separation: 1.0},
	}
}

// SpecByName returns the named spec.
func SpecByName(name string) (Spec, error) {
	for _, s := range Specs() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("dataset: unknown name %q", name)
}

// Generator draws datasets from a Spec with fixed class means, so that
// training and test splits (and every organization's shard) come from the
// same underlying distribution — the i.i.d. setting of footnote 4.
type Generator struct {
	spec  Spec
	means [][]float64
	src   *randx.Source
}

// NewGenerator creates a generator with deterministic class means derived
// from the seed.
func NewGenerator(spec Spec, seed int64) (*Generator, error) {
	if spec.Dim <= 0 || spec.Classes <= 1 {
		return nil, fmt.Errorf("dataset: invalid spec %+v", spec)
	}
	if spec.Noise <= 0 {
		return nil, fmt.Errorf("dataset: noise %v must be positive", spec.Noise)
	}
	src := randx.New(seed)
	means := make([][]float64, spec.Classes)
	for c := range means {
		mu := make([]float64, spec.Dim)
		var norm float64
		for j := range mu {
			mu[j] = src.Normal(0, 1)
			norm += mu[j] * mu[j]
		}
		norm = math.Sqrt(norm)
		for j := range mu {
			mu[j] = mu[j] / norm * spec.Separation
		}
		means[c] = mu
	}
	return &Generator{spec: spec, means: means, src: src}, nil
}

// Spec returns the generator's spec.
func (g *Generator) Spec() Spec { return g.spec }

// Sample draws n labeled points, classes balanced round-robin.
func (g *Generator) Sample(n int) (*Dataset, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dataset: sample size %d must be positive", n)
	}
	x := tensor.New(n, g.spec.Dim)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % g.spec.Classes
		y[i] = c
		row := x.Data[i*g.spec.Dim : (i+1)*g.spec.Dim]
		for j := range row {
			row[j] = g.means[c][j] + g.src.Normal(0, g.spec.Noise)
		}
	}
	// Shuffle so mini-batches are class-mixed.
	perm := g.src.Perm(n)
	xs := tensor.New(n, g.spec.Dim)
	ys := make([]int, n)
	for i, p := range perm {
		copy(xs.Data[i*g.spec.Dim:(i+1)*g.spec.Dim], x.Data[p*g.spec.Dim:(p+1)*g.spec.Dim])
		ys[i] = y[p]
	}
	return &Dataset{X: xs, Y: ys, Classes: g.spec.Classes}, nil
}

// Partition splits n total samples into len(sizes) disjoint shards with the
// given sizes, each freshly drawn (i.i.d. across organizations).
func (g *Generator) Partition(sizes []int) ([]*Dataset, error) {
	out := make([]*Dataset, len(sizes))
	for i, n := range sizes {
		d, err := g.Sample(n)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		out[i] = d
	}
	return out, nil
}

// PartitionNonIID draws label-skewed shards: each shard's class mix comes
// from a symmetric Dirichlet with concentration alpha. Small alpha →
// strongly skewed (each organization sees few classes, the realistic
// cross-silo setting the paper's footnote 4 abstracts away); large alpha →
// approaches IID. alpha must be positive.
func (g *Generator) PartitionNonIID(sizes []int, alpha float64) ([]*Dataset, error) {
	if alpha <= 0 {
		return nil, fmt.Errorf("dataset: dirichlet alpha %v must be positive", alpha)
	}
	out := make([]*Dataset, len(sizes))
	for i, n := range sizes {
		if n <= 0 {
			return nil, fmt.Errorf("dataset: shard %d size %d must be positive", i, n)
		}
		mix := g.dirichlet(alpha)
		d, err := g.sampleWithMix(n, mix)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		out[i] = d
	}
	return out, nil
}

// dirichlet draws class proportions from Dirichlet(alpha, …, alpha) via
// normalized Gamma(alpha, 1) draws (Marsaglia-Tsang would be overkill for
// the small alphas used; the sum-of-exponentials trick covers alpha ≥ 1 and
// a boost transform covers alpha < 1).
func (g *Generator) dirichlet(alpha float64) []float64 {
	mix := make([]float64, g.spec.Classes)
	var sum float64
	for c := range mix {
		mix[c] = g.gammaDraw(alpha)
		sum += mix[c]
	}
	if sum == 0 {
		for c := range mix {
			mix[c] = 1 / float64(len(mix))
		}
		return mix
	}
	for c := range mix {
		mix[c] /= sum
	}
	return mix
}

// gammaDraw samples Gamma(alpha, 1) with the Marsaglia-Tsang squeeze for
// alpha ≥ 1 and the Johnk-style boost for alpha < 1.
func (g *Generator) gammaDraw(alpha float64) float64 {
	if alpha < 1 {
		u := g.src.Float64()
		if u == 0 {
			u = math.SmallestNonzeroFloat64
		}
		return g.gammaDraw(alpha+1) * math.Pow(u, 1/alpha)
	}
	d := alpha - 1.0/3
	c := 1 / math.Sqrt(9*d)
	for {
		x := g.src.Normal(0, 1)
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := g.src.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// sampleWithMix draws n points whose labels follow the given class mix.
func (g *Generator) sampleWithMix(n int, mix []float64) (*Dataset, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dataset: sample size %d must be positive", n)
	}
	x := tensor.New(n, g.spec.Dim)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := g.pickClass(mix)
		y[i] = c
		row := x.Data[i*g.spec.Dim : (i+1)*g.spec.Dim]
		for j := range row {
			row[j] = g.means[c][j] + g.src.Normal(0, g.spec.Noise)
		}
	}
	return &Dataset{X: x, Y: y, Classes: g.spec.Classes}, nil
}

// pickClass samples a class index from the mix distribution.
func (g *Generator) pickClass(mix []float64) int {
	u := g.src.Float64()
	var acc float64
	for c, p := range mix {
		acc += p
		if u < acc {
			return c
		}
	}
	return len(mix) - 1
}

// Subset returns the first n samples of d as a view (no copy). Use after
// shuffling; TradeFL organizations contribute the fraction d_i of their
// shard this way.
func (d *Dataset) Subset(n int) (*Dataset, error) {
	if n <= 0 || n > d.Len() {
		return nil, fmt.Errorf("dataset: subset size %d outside [1,%d]", n, d.Len())
	}
	x, err := d.X.RowSlice(0, n)
	if err != nil {
		return nil, err
	}
	return &Dataset{X: x, Y: d.Y[:n], Classes: d.Classes}, nil
}

// ClassBalance returns the per-class sample counts, ascending by class id.
func (d *Dataset) ClassBalance() []int {
	counts := make([]int, d.Classes)
	for _, y := range d.Y {
		if y >= 0 && y < d.Classes {
			counts[y]++
		}
	}
	return counts
}

// Names returns the registered dataset names sorted alphabetically.
func Names() []string {
	specs := Specs()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	sort.Strings(names)
	return names
}
