// Package fl is the cross-silo federated-learning simulator of TradeFL
// (Sec. III-B): organizations hold local shards, train locally for a few
// epochs, and the server aggregates with FedAvg (Eq. 3), weighting each
// local model by its contributed sample count d_i·|S_i|. It is the
// substrate behind Fig. 2 (the empirical data-accuracy curve) and
// Figs. 13-15 (training efficiency and accuracy under each scheme).
package fl

import (
	"context"
	"errors"
	"fmt"
	"time"

	"tradefl/internal/fl/dataset"
	"tradefl/internal/fl/model"
	"tradefl/internal/fl/tensor"
	"tradefl/internal/obs"
	"tradefl/internal/randx"
)

// Config describes one federated training run.
type Config struct {
	// Arch selects the model architecture.
	Arch model.Arch
	// Shards holds each organization's full local dataset S_i.
	Shards []*dataset.Dataset
	// Fractions is d_i per organization; org i contributes the first
	// ⌈d_i·|S_i|⌉ samples of its shard. Length must match Shards.
	Fractions []float64
	// Rounds is the number of federated rounds.
	Rounds int
	// LocalEpochs is the number of local SGD epochs per round.
	LocalEpochs int
	// Test is the held-out evaluation set.
	Test *dataset.Dataset
	// Seed controls model initialization.
	Seed int64

	// RoundTimes optionally gives each organization's simulated local round
	// duration in arbitrary time units (same convention as
	// AsyncConfig.RoundTimes). Only consulted when StragglerDeadline > 0;
	// length must then match Shards.
	RoundTimes []float64
	// StragglerDeadline is the synchronous server's per-round cutoff in the
	// units of RoundTimes: an organization whose (jittered) simulated round
	// time exceeds it misses the round, its update is excluded and the
	// FedAvg weights are renormalized over the arrivals. Zero disables the
	// straggler model — every update always arrives (the pre-existing
	// behavior).
	StragglerDeadline float64
	// StragglerJitter is the ± relative jitter applied to each
	// organization's round time independently every round (e.g. 0.2 makes
	// the actual time ~ U[0.8·t, 1.2·t]); the jitter stream is seeded from
	// Seed, so straggler schedules are reproducible. Zero uses the round
	// times exactly. Must lie in [0, 1).
	StragglerJitter float64
}

// RoundMetrics records the global model's quality after one round.
type RoundMetrics struct {
	Round    int     `json:"round"`
	Loss     float64 `json:"loss"`
	Accuracy float64 `json:"accuracy"`
	// Arrived counts the contributing organizations whose update made the
	// round's straggler deadline (equal to the number of contributors when
	// the straggler model is off).
	Arrived int `json:"arrived,omitempty"`
	// Degraded marks a round in which no update arrived at all: the server
	// kept the previous global model instead of aborting the run.
	Degraded bool `json:"degraded,omitempty"`
}

// Result is the outcome of a federated training run.
type Result struct {
	// History holds per-round metrics of the global model on the test set
	// (Figs. 13-14 plot Loss, Fig. 15 plots the final Accuracy).
	History []RoundMetrics
	// FinalAccuracy is History[last].Accuracy.
	FinalAccuracy float64
	// FinalLoss is History[last].Loss.
	FinalLoss float64
	// TotalSamples is Σ ⌈d_i·|S_i|⌉, the data actually trained on.
	TotalSamples int
	// Stragglers is the total number of per-round updates that missed the
	// straggler deadline across the run.
	Stragglers int
	// DegradedRounds counts rounds in which every update missed the
	// deadline and the previous global model was carried forward.
	DegradedRounds int
}

// validate reports the first problem in the config.
func (c *Config) validate() error {
	if len(c.Shards) == 0 {
		return errors.New("fl: no shards")
	}
	if len(c.Fractions) != len(c.Shards) {
		return fmt.Errorf("fl: %d fractions for %d shards", len(c.Fractions), len(c.Shards))
	}
	if c.Test == nil || c.Test.Len() == 0 {
		return errors.New("fl: missing test set")
	}
	if c.Rounds <= 0 {
		return errors.New("fl: rounds must be positive")
	}
	if c.LocalEpochs <= 0 {
		return errors.New("fl: local epochs must be positive")
	}
	dim := c.Test.Dim()
	classes := c.Test.Classes
	for i, s := range c.Shards {
		if s.Dim() != dim || s.Classes != classes {
			return fmt.Errorf("fl: shard %d shape (%d dims, %d classes) differs from test (%d, %d)",
				i, s.Dim(), s.Classes, dim, classes)
		}
		if c.Fractions[i] < 0 || c.Fractions[i] > 1 {
			return fmt.Errorf("fl: fraction[%d] = %v outside [0,1]", i, c.Fractions[i])
		}
	}
	if c.StragglerDeadline < 0 {
		return fmt.Errorf("fl: straggler deadline %v must not be negative", c.StragglerDeadline)
	}
	if c.StragglerDeadline > 0 {
		if len(c.RoundTimes) != len(c.Shards) {
			return fmt.Errorf("fl: %d round times for %d shards", len(c.RoundTimes), len(c.Shards))
		}
		for i, rt := range c.RoundTimes {
			if rt <= 0 {
				return fmt.Errorf("fl: round time %d must be positive, got %v", i, rt)
			}
		}
		if c.StragglerJitter < 0 || c.StragglerJitter >= 1 {
			return fmt.Errorf("fl: straggler jitter %v outside [0,1)", c.StragglerJitter)
		}
	}
	return nil
}

// contributed returns org i's contributed subset, or nil for zero samples.
func (c *Config) contributed(i int) (*dataset.Dataset, error) {
	n := int(c.Fractions[i]*float64(c.Shards[i].Len()) + 0.999999)
	if n <= 0 {
		return nil, nil
	}
	if n > c.Shards[i].Len() {
		n = c.Shards[i].Len()
	}
	return c.Shards[i].Subset(n)
}

// Run executes federated training and returns per-round metrics.
func Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	global, err := model.NewForArch(cfg.Test.Dim(), cfg.Test.Classes, cfg.Arch, cfg.Seed)
	if err != nil {
		return nil, err
	}

	// Materialize contributions once; weights are the contributed counts.
	subsets := make([]*dataset.Dataset, len(cfg.Shards))
	weights := make([]float64, len(cfg.Shards))
	var totalSamples int
	var weightSum float64
	for i := range cfg.Shards {
		sub, err := cfg.contributed(i)
		if err != nil {
			return nil, fmt.Errorf("org %d: %w", i, err)
		}
		subsets[i] = sub
		if sub != nil {
			weights[i] = float64(sub.Len())
			totalSamples += sub.Len()
			weightSum += weights[i]
		}
	}
	if weightSum == 0 {
		return nil, errors.New("fl: no organization contributes any data")
	}

	mRuns.Inc()
	ctx, root := obs.Span(context.Background(), "fl.run")
	defer root.End()

	// Straggler schedule: a jitter stream derived from Seed decides which
	// updates make each round's deadline, so runs are reproducible.
	var arrivals *randx.Source
	contributors := 0
	for _, sub := range subsets {
		if sub != nil {
			contributors++
		}
	}
	if cfg.StragglerDeadline > 0 {
		arrivals = randx.New(cfg.Seed + 1)
	}

	res := &Result{TotalSamples: totalSamples}
	for round := 1; round <= cfg.Rounds; round++ {
		roundStart := time.Now()
		_, roundSpan := obs.Span(ctx, "fl.round")

		// Decide which contributors make this round's deadline. Jitter
		// draws are consumed in a fixed order independent of the outcome,
		// keeping the schedule a pure function of Seed.
		included := make([]bool, len(subsets))
		arrived := 0
		var roundWeight float64
		for i, sub := range subsets {
			if sub == nil {
				continue
			}
			if cfg.StragglerDeadline > 0 {
				at := cfg.RoundTimes[i]
				if cfg.StragglerJitter > 0 {
					at *= 1 + arrivals.Uniform(-cfg.StragglerJitter, cfg.StragglerJitter)
				}
				if at > cfg.StragglerDeadline {
					res.Stragglers++
					mStragglers.Inc()
					obs.FlightRecord("fl", "straggler", fmt.Sprintf("round=%d org=%d at=%.3g deadline=%.3g", round, i, at, cfg.StragglerDeadline))
					flLog.Debug("update missed round deadline", "round", round, "org", i, "at", at, "deadline", cfg.StragglerDeadline)
					continue
				}
			}
			included[i] = true
			arrived++
			roundWeight += weights[i]
		}
		if contributors > 0 {
			mArrivalRatio.Set(float64(arrived) / float64(contributors))
		}

		if arrived == 0 {
			// Graceful degradation: every update was late. Carry the
			// previous global model forward rather than aborting the run —
			// the next round's arrivals resume training where it stood.
			res.DegradedRounds++
			mDegradedRounds.Inc()
			obs.FlightRecord("fl", "degraded-round", fmt.Sprintf("round=%d: no update met the deadline", round))
			flLog.Warn("degraded round: no update met the deadline", "round", round)
		} else {
			// Local training on a copy of the global model per arrived
			// organization; FedAvg weights renormalize over the arrivals.
			agg := zerosLike(global.Params())
			for i, sub := range subsets {
				if !included[i] {
					continue
				}
				local := global.Clone()
				if _, err := local.TrainEpochs(sub, cfg.LocalEpochs, cfg.Arch.LearningRate, cfg.Arch.BatchSize); err != nil {
					roundSpan.End()
					return nil, fmt.Errorf("round %d org %d: %w", round, i, err)
				}
				for p, mat := range local.Params() {
					if err := agg[p].AXPY(weights[i]/roundWeight, mat); err != nil {
						roundSpan.End()
						return nil, err
					}
				}
				mUpdates.Inc()
			}
			if err := global.SetParams(agg); err != nil {
				roundSpan.End()
				return nil, err
			}
		}
		loss, err := global.Loss(cfg.Test)
		if err != nil {
			roundSpan.End()
			return nil, err
		}
		acc, err := global.Accuracy(cfg.Test)
		if err != nil {
			roundSpan.End()
			return nil, err
		}
		res.History = append(res.History, RoundMetrics{
			Round: round, Loss: loss, Accuracy: acc,
			Arrived: arrived, Degraded: arrived == 0,
		})
		mRounds.Inc()
		mAccuracy.Set(acc)
		mLoss.Set(loss)
		roundSpan.End()
		mRoundSec.ObserveSince(roundStart)
	}
	last := res.History[len(res.History)-1]
	res.FinalLoss = last.Loss
	res.FinalAccuracy = last.Accuracy
	publishHistory(res.History)
	return res, nil
}

// zerosLike allocates zero matrices with the shapes of params.
func zerosLike(params []*tensor.Matrix) []*tensor.Matrix {
	out := make([]*tensor.Matrix, len(params))
	for i, p := range params {
		out[i] = tensor.New(p.Rows, p.Cols)
	}
	return out
}

// AccuracyCurve trains the federated system at each data fraction in
// fractions (applied to every shard uniformly) and returns the final test
// accuracies — the empirical data-accuracy function of Fig. 2. The
// remaining Config fields are used as-is.
func AccuracyCurve(cfg Config, fractions []float64) ([]float64, error) {
	out := make([]float64, len(fractions))
	for k, frac := range fractions {
		run := cfg
		run.Fractions = make([]float64, len(cfg.Shards))
		for i := range run.Fractions {
			run.Fractions[i] = frac
		}
		res, err := Run(run)
		if err != nil {
			return nil, fmt.Errorf("fraction %v: %w", frac, err)
		}
		out[k] = res.FinalAccuracy
	}
	return out, nil
}
