package fl

import (
	"strings"
	"testing"

	"tradefl/internal/fl/dataset"
	"tradefl/internal/fl/model"
)

func fixture(t *testing.T, name string, shardSizes []int) Config {
	t.Helper()
	spec, err := dataset.SpecByName(name)
	if err != nil {
		t.Fatal(err)
	}
	g, err := dataset.NewGenerator(spec, 21)
	if err != nil {
		t.Fatal(err)
	}
	shards, err := g.Partition(shardSizes)
	if err != nil {
		t.Fatal(err)
	}
	test, err := g.Sample(600)
	if err != nil {
		t.Fatal(err)
	}
	arch, err := model.ArchByName("mobilenet")
	if err != nil {
		t.Fatal(err)
	}
	fr := make([]float64, len(shardSizes))
	for i := range fr {
		fr[i] = 1
	}
	return Config{
		Arch:        arch,
		Shards:      shards,
		Fractions:   fr,
		Rounds:      8,
		LocalEpochs: 2,
		Test:        test,
		Seed:        5,
	}
}

func TestRunProducesHistory(t *testing.T) {
	cfg := fixture(t, "fmnist", []int{200, 200, 200})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != cfg.Rounds {
		t.Fatalf("history has %d rounds, want %d", len(res.History), cfg.Rounds)
	}
	if res.TotalSamples != 600 {
		t.Errorf("TotalSamples = %d, want 600", res.TotalSamples)
	}
	if res.FinalAccuracy != res.History[len(res.History)-1].Accuracy {
		t.Error("FinalAccuracy inconsistent with history")
	}
	if res.FinalAccuracy < 0.3 {
		t.Errorf("final accuracy %v too low for fmnist", res.FinalAccuracy)
	}
}

func TestLossDecreasesOverRounds(t *testing.T) {
	cfg := fixture(t, "fmnist", []int{300, 300})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.History[0].Loss, res.FinalLoss
	if last >= first {
		t.Errorf("loss did not improve: %v -> %v", first, last)
	}
}

func TestFractionsControlContribution(t *testing.T) {
	cfg := fixture(t, "svhn", []int{200, 200})
	cfg.Fractions = []float64{0.5, 0.25}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSamples != 150 {
		t.Errorf("TotalSamples = %d, want 150", res.TotalSamples)
	}
}

func TestZeroFractionOrgIsSkipped(t *testing.T) {
	cfg := fixture(t, "svhn", []int{200, 200})
	cfg.Fractions = []float64{1, 0}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSamples != 200 {
		t.Errorf("TotalSamples = %d, want 200", res.TotalSamples)
	}
}

func TestAllZeroFractionsRejected(t *testing.T) {
	cfg := fixture(t, "svhn", []int{100, 100})
	cfg.Fractions = []float64{0, 0}
	if _, err := Run(cfg); err == nil {
		t.Error("accepted run with no contributed data")
	}
}

func TestValidation(t *testing.T) {
	base := fixture(t, "fmnist", []int{100, 100})
	tests := []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"no shards", func(c *Config) { c.Shards = nil }, "no shards"},
		{"fraction count", func(c *Config) { c.Fractions = c.Fractions[:1] }, "fractions"},
		{"missing test", func(c *Config) { c.Test = nil }, "test"},
		{"zero rounds", func(c *Config) { c.Rounds = 0 }, "rounds"},
		{"zero epochs", func(c *Config) { c.LocalEpochs = 0 }, "epochs"},
		{"bad fraction", func(c *Config) { c.Fractions[0] = 1.5 }, "outside"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base
			cfg.Fractions = append([]float64(nil), base.Fractions...)
			tt.mutate(&cfg)
			_, err := Run(cfg)
			if err == nil {
				t.Fatal("Run accepted invalid config")
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not mention %q", err, tt.want)
			}
		})
	}
}

func TestShardShapeMismatchRejected(t *testing.T) {
	cfg := fixture(t, "fmnist", []int{100})
	other := fixture(t, "cifar10", []int{100})
	cfg.Shards = append(cfg.Shards, other.Shards[0])
	cfg.Fractions = []float64{1, 1}
	if _, err := Run(cfg); err == nil {
		t.Error("accepted mismatched shard dimensionality")
	}
}

func TestMoreDataHelps(t *testing.T) {
	// The core Fig. 2 property: accuracy at full participation beats
	// accuracy at 10% participation (same seed and rounds).
	cfg := fixture(t, "fmnist", []int{400, 400, 400})
	cfg.Rounds = 12
	accs, err := AccuracyCurve(cfg, []float64{0.1, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if accs[1] <= accs[0] {
		t.Errorf("full data accuracy %v not above 10%% accuracy %v", accs[1], accs[0])
	}
}

func TestDeterministicRuns(t *testing.T) {
	cfg := fixture(t, "eurosat", []int{150, 150})
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.FinalLoss != b.FinalLoss || a.FinalAccuracy != b.FinalAccuracy {
		t.Error("identical configs produced different results")
	}
}
