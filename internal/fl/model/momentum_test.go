package model

import "testing"

func TestMomentumAcceleratesTraining(t *testing.T) {
	train, test := trainingSet(t, "svhn", 600)
	plain, err := NewMLP(train.Dim(), train.Classes, []int{24}, 5)
	if err != nil {
		t.Fatal(err)
	}
	heavy := plain.Clone()
	heavy.Momentum = 0.9
	if _, err := plain.TrainEpochs(train, 6, 0.05, 32); err != nil {
		t.Fatal(err)
	}
	if _, err := heavy.TrainEpochs(train, 6, 0.05, 32); err != nil {
		t.Fatal(err)
	}
	lp, err := plain.Loss(train)
	if err != nil {
		t.Fatal(err)
	}
	lh, err := heavy.Loss(train)
	if err != nil {
		t.Fatal(err)
	}
	if lh >= lp {
		t.Errorf("momentum loss %v not below plain SGD %v on the same budget", lh, lp)
	}
	if acc, err := heavy.Accuracy(test); err != nil || acc < 0.2 {
		t.Errorf("momentum model accuracy %v (err %v)", acc, err)
	}
}

func TestWeightDecayShrinksWeights(t *testing.T) {
	train, _ := trainingSet(t, "fmnist", 300)
	free, err := NewMLP(train.Dim(), train.Classes, []int{16}, 6)
	if err != nil {
		t.Fatal(err)
	}
	decayed := free.Clone()
	decayed.WeightDecay = 0.05
	if _, err := free.TrainEpochs(train, 8, 0.05, 32); err != nil {
		t.Fatal(err)
	}
	if _, err := decayed.TrainEpochs(train, 8, 0.05, 32); err != nil {
		t.Fatal(err)
	}
	var normFree, normDecayed float64
	for _, p := range free.Params() {
		normFree += p.Frobenius()
	}
	for _, p := range decayed.Params() {
		normDecayed += p.Frobenius()
	}
	if normDecayed >= normFree {
		t.Errorf("weight decay norm %v not below free norm %v", normDecayed, normFree)
	}
}

func TestCloneCarriesHyperparameters(t *testing.T) {
	m, err := NewMLP(4, 3, []int{8}, 1)
	if err != nil {
		t.Fatal(err)
	}
	m.Momentum = 0.9
	m.WeightDecay = 0.01
	c := m.Clone()
	if c.Momentum != 0.9 || c.WeightDecay != 0.01 {
		t.Error("Clone dropped hyperparameters")
	}
}
