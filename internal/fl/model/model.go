// Package model implements the trainable models of the FL simulator: fully
// connected ReLU networks with a softmax cross-entropy head, trained by
// mini-batch SGD. An architecture registry maps the paper's model names
// (ResNet-18, AlexNet, DenseNet, MobileNet) to network capacities that
// preserve their relative ordering (DESIGN.md §2).
package model

import (
	"errors"
	"fmt"

	"tradefl/internal/fl/dataset"
	"tradefl/internal/fl/tensor"
	"tradefl/internal/randx"
)

// MLP is a fully connected network: Dim → Hidden[0] → … → Classes with
// ReLU activations between layers.
type MLP struct {
	weights []*tensor.Matrix // weights[l]: (in × out)
	biases  []*tensor.Matrix // biases[l]: (1 × out)
	dims    []int            // layer widths incl. input and output

	// Momentum ∈ [0, 1) enables heavy-ball SGD; WeightDecay ≥ 0 adds L2
	// regularization. Both default to plain SGD (zero values).
	Momentum    float64
	WeightDecay float64
	velW, velB  []*tensor.Matrix // momentum buffers, lazily allocated
}

// Arch describes a network architecture plus its training hyperparameters.
type Arch struct {
	// Name identifies the architecture ("resnet18", ...).
	Name string
	// Hidden lists the hidden layer widths.
	Hidden []int
	// LearningRate is the SGD step size.
	LearningRate float64
	// BatchSize is the mini-batch size.
	BatchSize int
	// Momentum is the heavy-ball coefficient (0 = plain SGD).
	Momentum float64
	// WeightDecay is the L2 regularization strength.
	WeightDecay float64
}

// Registry returns the architecture registry. Capacities are chosen so the
// relative strength ordering of the paper's models is preserved:
// ResNet-18 ≳ DenseNet > AlexNet > MobileNet.
func Registry() []Arch {
	return []Arch{
		// Plain SGD by default: the Figs. 13-15 comparisons measure how the
		// *data volumes* the schemes choose translate into model quality,
		// and momentum's acceleration washes those differences out. Set
		// Momentum/WeightDecay explicitly for accelerated training.
		{Name: "resnet18", Hidden: []int{64, 64}, LearningRate: 0.1, BatchSize: 32},
		{Name: "densenet", Hidden: []int{48, 48}, LearningRate: 0.1, BatchSize: 32},
		{Name: "alexnet", Hidden: []int{48}, LearningRate: 0.1, BatchSize: 32},
		{Name: "mobilenet", Hidden: []int{24}, LearningRate: 0.1, BatchSize: 32},
	}
}

// ArchByName returns the named architecture.
func ArchByName(name string) (Arch, error) {
	for _, a := range Registry() {
		if a.Name == name {
			return a, nil
		}
	}
	return Arch{}, fmt.Errorf("model: unknown architecture %q", name)
}

// NewForArch builds a network configured by an architecture entry
// (capacity plus optimizer hyperparameters).
func NewForArch(inputDim, classes int, arch Arch, seed int64) (*MLP, error) {
	m, err := NewMLP(inputDim, classes, arch.Hidden, seed)
	if err != nil {
		return nil, err
	}
	m.Momentum = arch.Momentum
	m.WeightDecay = arch.WeightDecay
	return m, nil
}

// NewMLP builds a network for the given input dimension and class count,
// initialized with Xavier weights from the seed.
func NewMLP(inputDim, classes int, hidden []int, seed int64) (*MLP, error) {
	if inputDim <= 0 || classes <= 1 {
		return nil, fmt.Errorf("model: invalid dims input=%d classes=%d", inputDim, classes)
	}
	dims := make([]int, 0, len(hidden)+2)
	dims = append(dims, inputDim)
	for _, h := range hidden {
		if h <= 0 {
			return nil, fmt.Errorf("model: invalid hidden width %d", h)
		}
		dims = append(dims, h)
	}
	dims = append(dims, classes)
	src := randx.New(seed)
	m := &MLP{dims: dims}
	for l := 0; l+1 < len(dims); l++ {
		w := tensor.New(dims[l], dims[l+1])
		w.RandomizeXavier(src)
		m.weights = append(m.weights, w)
		m.biases = append(m.biases, tensor.New(1, dims[l+1]))
	}
	return m, nil
}

// Clone returns a deep copy (used to broadcast the global model). Momentum
// buffers are not copied: each local trainer starts with fresh velocity.
func (m *MLP) Clone() *MLP {
	out := &MLP{
		dims:        append([]int(nil), m.dims...),
		Momentum:    m.Momentum,
		WeightDecay: m.WeightDecay,
	}
	for l := range m.weights {
		out.weights = append(out.weights, m.weights[l].Clone())
		out.biases = append(out.biases, m.biases[l].Clone())
	}
	return out
}

// Layers returns the number of weight layers.
func (m *MLP) Layers() int { return len(m.weights) }

// Params returns flattened views of all parameters (weights then biases,
// layer by layer); mutating them mutates the model. Used by FedAvg.
func (m *MLP) Params() []*tensor.Matrix {
	out := make([]*tensor.Matrix, 0, 2*len(m.weights))
	for l := range m.weights {
		out = append(out, m.weights[l], m.biases[l])
	}
	return out
}

// SetParams copies src parameter values into m.
func (m *MLP) SetParams(src []*tensor.Matrix) error {
	dst := m.Params()
	if len(dst) != len(src) {
		return errors.New("model: parameter count mismatch")
	}
	for i := range dst {
		if err := dst[i].CopyFrom(src[i]); err != nil {
			return fmt.Errorf("param %d: %w", i, err)
		}
	}
	return nil
}

// forward runs the network on x, returning the activations of every layer
// (acts[0] = x, acts[last] = logits). Activations beyond acts[0] come from
// the tensor pool; callers release them with releaseActs when done.
func (m *MLP) forward(x *tensor.Matrix) ([]*tensor.Matrix, error) {
	acts := make([]*tensor.Matrix, 0, len(m.weights)+1)
	acts = append(acts, x)
	cur := x
	for l := range m.weights {
		next := tensor.Get(cur.Rows, m.weights[l].Cols)
		if err := tensor.MatMul(next, cur, m.weights[l]); err != nil {
			return nil, err
		}
		if err := next.AddRowVector(m.biases[l]); err != nil {
			return nil, err
		}
		if l+1 < len(m.weights) {
			next.ReLU()
		}
		acts = append(acts, next)
		cur = next
	}
	return acts, nil
}

// releaseActs returns the pooled activations (all but acts[0], which is the
// caller's input) to the tensor pool.
func releaseActs(acts []*tensor.Matrix) {
	for _, a := range acts[1:] {
		tensor.Put(a)
	}
}

// Loss returns the mean cross-entropy of the model on d (Eq. 1).
func (m *MLP) Loss(d *dataset.Dataset) (float64, error) {
	acts, err := m.forward(d.X)
	if err != nil {
		return 0, err
	}
	defer releaseActs(acts)
	logits := acts[len(acts)-1]
	probs := tensor.Get(logits.Rows, logits.Cols)
	defer tensor.Put(probs)
	return tensor.SoftmaxCrossEntropy(probs, logits, d.Y)
}

// Accuracy returns the top-1 accuracy of the model on d.
func (m *MLP) Accuracy(d *dataset.Dataset) (float64, error) {
	acts, err := m.forward(d.X)
	if err != nil {
		return 0, err
	}
	defer releaseActs(acts)
	pred := acts[len(acts)-1].ArgmaxRows()
	var hit int
	for i, p := range pred {
		if p == d.Y[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(pred)), nil
}

// TrainEpochs runs SGD for the given number of epochs over d with the arch
// hyperparameters, returning the final epoch's mean training loss.
func (m *MLP) TrainEpochs(d *dataset.Dataset, epochs int, lr float64, batch int) (float64, error) {
	if epochs <= 0 {
		return 0, errors.New("model: epochs must be positive")
	}
	if lr <= 0 {
		return 0, errors.New("model: learning rate must be positive")
	}
	if batch <= 0 {
		batch = 32
	}
	var last float64
	for e := 0; e < epochs; e++ {
		var epochLoss float64
		var batches int
		for lo := 0; lo < d.Len(); lo += batch {
			hi := lo + batch
			if hi > d.Len() {
				hi = d.Len()
			}
			x, err := d.X.RowSlice(lo, hi)
			if err != nil {
				return 0, err
			}
			loss, err := m.step(x, d.Y[lo:hi], lr)
			if err != nil {
				return 0, err
			}
			epochLoss += loss
			batches++
		}
		last = epochLoss / float64(batches)
	}
	return last, nil
}

// step performs one SGD update on a mini-batch and returns its loss. All
// intermediates (activations, softmax buffer, per-layer gradients) cycle
// through the tensor pool, so steady-state training steps allocate nothing.
func (m *MLP) step(x *tensor.Matrix, y []int, lr float64) (float64, error) {
	acts, err := m.forward(x)
	if err != nil {
		return 0, err
	}
	defer releaseActs(acts)
	logits := acts[len(acts)-1]
	probs := tensor.Get(logits.Rows, logits.Cols)
	loss, err := tensor.SoftmaxCrossEntropy(probs, logits, y)
	if err != nil {
		tensor.Put(probs)
		return 0, err
	}
	grad := probs // reuse buffer: grad aliases probs
	if err := tensor.SoftmaxCrossEntropyGrad(grad, probs, y); err != nil {
		tensor.Put(probs)
		return 0, err
	}
	// Backpropagate layer by layer.
	for l := len(m.weights) - 1; l >= 0; l-- {
		in := acts[l]
		gw := tensor.Get(m.weights[l].Rows, m.weights[l].Cols)
		gb := tensor.Get(1, m.biases[l].Cols)
		var gin *tensor.Matrix
		release := func() {
			tensor.Put(gw)
			tensor.Put(gb)
			tensor.Put(gin)
			tensor.Put(grad)
		}
		if err := tensor.MatMulATB(gw, in, grad); err != nil {
			release()
			return 0, err
		}
		if err := tensor.ColumnSums(gb, grad); err != nil {
			release()
			return 0, err
		}
		if l > 0 {
			gin = tensor.Get(grad.Rows, m.weights[l].Rows)
			if err := tensor.MatMulABT(gin, grad, m.weights[l]); err != nil {
				release()
				return 0, err
			}
			if err := tensor.ReLUBackward(gin, acts[l]); err != nil {
				release()
				return 0, err
			}
		}
		if m.WeightDecay > 0 {
			if err := gw.AXPY(m.WeightDecay, m.weights[l]); err != nil {
				release()
				return 0, err
			}
		}
		if err := m.applyUpdate(l, gw, gb, lr); err != nil {
			release()
			return 0, err
		}
		tensor.Put(gw)
		tensor.Put(gb)
		tensor.Put(grad)
		grad = gin
	}
	return loss, nil
}

// applyUpdate performs the layer-l parameter step: plain SGD, or heavy-
// ball momentum (v ← μ·v + g; w ← w − lr·v) when Momentum > 0.
func (m *MLP) applyUpdate(l int, gw, gb *tensor.Matrix, lr float64) error {
	if m.Momentum <= 0 {
		if err := m.weights[l].AXPY(-lr, gw); err != nil {
			return err
		}
		return m.biases[l].AXPY(-lr, gb)
	}
	if m.velW == nil {
		m.velW = make([]*tensor.Matrix, len(m.weights))
		m.velB = make([]*tensor.Matrix, len(m.biases))
	}
	if m.velW[l] == nil {
		m.velW[l] = tensor.New(m.weights[l].Rows, m.weights[l].Cols)
		m.velB[l] = tensor.New(m.biases[l].Rows, m.biases[l].Cols)
	}
	m.velW[l].Scale(m.Momentum)
	if err := m.velW[l].AXPY(1, gw); err != nil {
		return err
	}
	m.velB[l].Scale(m.Momentum)
	if err := m.velB[l].AXPY(1, gb); err != nil {
		return err
	}
	if err := m.weights[l].AXPY(-lr, m.velW[l]); err != nil {
		return err
	}
	return m.biases[l].AXPY(-lr, m.velB[l])
}
