package model

import (
	"math"
	"testing"

	"tradefl/internal/fl/dataset"
)

func trainingSet(t *testing.T, name string, n int) (*dataset.Dataset, *dataset.Dataset) {
	t.Helper()
	spec, err := dataset.SpecByName(name)
	if err != nil {
		t.Fatal(err)
	}
	g, err := dataset.NewGenerator(spec, 11)
	if err != nil {
		t.Fatal(err)
	}
	train, err := g.Sample(n)
	if err != nil {
		t.Fatal(err)
	}
	test, err := g.Sample(500)
	if err != nil {
		t.Fatal(err)
	}
	return train, test
}

func TestRegistryNamesAndOrdering(t *testing.T) {
	archs := Registry()
	if len(archs) != 4 {
		t.Fatalf("got %d archs, want 4", len(archs))
	}
	capacity := func(a Arch) int {
		total := 0
		for _, h := range a.Hidden {
			total += h
		}
		return total
	}
	byName := map[string]Arch{}
	for _, a := range archs {
		byName[a.Name] = a
		if a.LearningRate <= 0 || a.BatchSize <= 0 {
			t.Errorf("%s: bad hyperparameters %+v", a.Name, a)
		}
	}
	if capacity(byName["resnet18"]) <= capacity(byName["mobilenet"]) {
		t.Error("resnet18 should have more capacity than mobilenet")
	}
}

func TestArchByName(t *testing.T) {
	if _, err := ArchByName("vgg"); err == nil {
		t.Error("accepted unknown architecture")
	}
	a, err := ArchByName("mobilenet")
	if err != nil {
		t.Fatal(err)
	}
	if a.Name != "mobilenet" {
		t.Errorf("got %q", a.Name)
	}
}

func TestNewMLPValidation(t *testing.T) {
	if _, err := NewMLP(0, 10, nil, 1); err == nil {
		t.Error("accepted zero input dim")
	}
	if _, err := NewMLP(4, 1, nil, 1); err == nil {
		t.Error("accepted single class")
	}
	if _, err := NewMLP(4, 10, []int{0}, 1); err == nil {
		t.Error("accepted zero hidden width")
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	train, _ := trainingSet(t, "fmnist", 400)
	m, err := NewMLP(train.Dim(), train.Classes, []int{24}, 1)
	if err != nil {
		t.Fatal(err)
	}
	before, err := m.Loss(train)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.TrainEpochs(train, 10, 0.1, 32); err != nil {
		t.Fatal(err)
	}
	after, err := m.Loss(train)
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Errorf("loss did not decrease: %v -> %v", before, after)
	}
}

func TestTrainingBeatsChanceAccuracy(t *testing.T) {
	train, test := trainingSet(t, "fmnist", 800)
	m, err := NewMLP(train.Dim(), train.Classes, []int{32}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.TrainEpochs(train, 20, 0.1, 32); err != nil {
		t.Fatal(err)
	}
	acc, err := m.Accuracy(test)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.4 {
		t.Errorf("test accuracy %v, want well above 0.1 chance", acc)
	}
}

func TestTrainEpochsValidation(t *testing.T) {
	train, _ := trainingSet(t, "fmnist", 50)
	m, _ := NewMLP(train.Dim(), train.Classes, nil, 1)
	if _, err := m.TrainEpochs(train, 0, 0.1, 32); err == nil {
		t.Error("accepted zero epochs")
	}
	if _, err := m.TrainEpochs(train, 1, 0, 32); err == nil {
		t.Error("accepted zero learning rate")
	}
	if _, err := m.TrainEpochs(train, 1, 0.1, 0); err != nil {
		t.Errorf("zero batch should default, got %v", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	train, _ := trainingSet(t, "svhn", 100)
	m, _ := NewMLP(train.Dim(), train.Classes, []int{8}, 3)
	c := m.Clone()
	if _, err := c.TrainEpochs(train, 2, 0.1, 16); err != nil {
		t.Fatal(err)
	}
	lm, _ := m.Loss(train)
	lc, _ := c.Loss(train)
	if lm == lc {
		t.Error("training the clone changed (or matched) the original exactly")
	}
}

func TestParamsRoundTrip(t *testing.T) {
	train, _ := trainingSet(t, "eurosat", 60)
	a, _ := NewMLP(train.Dim(), train.Classes, []int{8}, 4)
	b, _ := NewMLP(train.Dim(), train.Classes, []int{8}, 5)
	la, _ := a.Loss(train)
	if err := b.SetParams(a.Params()); err != nil {
		t.Fatal(err)
	}
	lb, _ := b.Loss(train)
	if math.Abs(la-lb) > 1e-12 {
		t.Errorf("SetParams did not copy: %v vs %v", la, lb)
	}
	wrong, _ := NewMLP(train.Dim(), train.Classes, []int{16}, 6)
	if err := b.SetParams(wrong.Params()); err == nil {
		t.Error("SetParams accepted mismatched shapes")
	}
	small, _ := NewMLP(train.Dim(), train.Classes, nil, 6)
	if err := b.SetParams(small.Params()); err == nil {
		t.Error("SetParams accepted wrong layer count")
	}
}

func TestDeterministicTraining(t *testing.T) {
	train, _ := trainingSet(t, "cifar10", 100)
	run := func() float64 {
		m, _ := NewMLP(train.Dim(), train.Classes, []int{8}, 9)
		l, _ := m.TrainEpochs(train, 3, 0.1, 16)
		return l
	}
	if run() != run() {
		t.Error("training is not deterministic")
	}
}

func TestLayersCount(t *testing.T) {
	m, _ := NewMLP(4, 3, []int{8, 8}, 1)
	if m.Layers() != 3 {
		t.Errorf("Layers = %d, want 3", m.Layers())
	}
	if got := len(m.Params()); got != 6 {
		t.Errorf("Params count = %d, want 6", got)
	}
}

func TestLargerCapacityFitsBetter(t *testing.T) {
	// On the same data budget, resnet18-sized nets should fit the training
	// set at least as well as mobilenet-sized ones.
	train, _ := trainingSet(t, "cifar10", 600)
	big, _ := NewMLP(train.Dim(), train.Classes, []int{64, 64}, 7)
	small, _ := NewMLP(train.Dim(), train.Classes, []int{24}, 7)
	if _, err := big.TrainEpochs(train, 15, 0.1, 32); err != nil {
		t.Fatal(err)
	}
	if _, err := small.TrainEpochs(train, 15, 0.1, 32); err != nil {
		t.Fatal(err)
	}
	lb, _ := big.Loss(train)
	ls, _ := small.Loss(train)
	if lb > ls+0.05 {
		t.Errorf("big net train loss %v worse than small %v", lb, ls)
	}
}
