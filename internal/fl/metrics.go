package fl

import "tradefl/internal/obs"

// Telemetry of the federated-learning loop: per-round quality and wall
// time, shared by the synchronous (Run) and asynchronous (RunAsync)
// aggregators.
var (
	mRuns     = obs.NewCounter("tradefl_fl_runs_total", "federated training runs started")
	mRounds   = obs.NewCounter("tradefl_fl_rounds_total", "federated rounds (or async evaluations) completed")
	mUpdates  = obs.NewCounter("tradefl_fl_local_updates_total", "local organization updates aggregated into the global model")
	mAccuracy = obs.NewGauge("tradefl_fl_round_accuracy", "global-model test accuracy after the most recent round")
	mLoss     = obs.NewGauge("tradefl_fl_round_loss", "global-model test loss after the most recent round")
	mRoundSec = obs.NewHistogram("tradefl_fl_round_seconds", "wall time of one federated round incl. evaluation", obs.TimeBuckets)
)

var flLog = obs.Component("fl")

// Straggler-model telemetry (synchronous aggregator only): late updates,
// rounds that lost every update, and the most recent arrival ratio.
var (
	mStragglers     = obs.NewCounter("tradefl_fl_stragglers_total", "local updates excluded for missing the round deadline")
	mDegradedRounds = obs.NewCounter("tradefl_fl_degraded_rounds_total", "rounds in which no update met the deadline and the previous global model was kept")
	mArrivalRatio   = obs.NewGauge("tradefl_fl_round_arrival_ratio", "fraction of contributing organizations whose update met the most recent round's deadline")
)

// publishHistory mirrors a run's per-round history into the round gauges
// and the /runz trajectories.
func publishHistory(history []RoundMetrics) {
	if len(history) == 0 {
		return
	}
	accs := make([]float64, len(history))
	losses := make([]float64, len(history))
	for i, h := range history {
		accs[i] = h.Accuracy
		losses[i] = h.Loss
	}
	obs.RecordTrajectory("fl.accuracy", accs)
	obs.RecordTrajectory("fl.loss", losses)
}
