// Package tensor provides the dense float64 matrix kernels that the FL
// simulator's neural-network models are built on. It is deliberately small:
// row-major matrices, the handful of BLAS-like operations training needs,
// and nothing else. All operations are deterministic: the matmul kernels
// are cache-blocked and dispatch disjoint output-row ranges to a bounded
// worker pool above a size threshold, and every output element accumulates
// its products in the same order as the serial triple loop, so results are
// byte-identical for every worker count.
package tensor

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"tradefl/internal/parallel"
	"tradefl/internal/randx"
)

// Cache-blocking panel sizes (rows of the streamed operand kept hot per
// panel) and the flop count below which dispatching goroutines costs more
// than it saves.
const (
	kernelBlock      = 64
	minParallelFlops = 1 << 16
)

// kernelWorkers overrides the worker count of the matmul kernels when
// positive; 0 defers to parallel.Default().
var kernelWorkers atomic.Int64

// SetWorkers bounds the goroutines used by the matmul kernels: 1 forces
// the serial path, 0 restores the process default (GOMAXPROCS).
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	kernelWorkers.Store(int64(n))
}

// Workers returns the effective kernel worker count.
func Workers() int {
	if n := kernelWorkers.Load(); n > 0 {
		return int(n)
	}
	return parallel.Default()
}

// forRowRanges splits [0, rows) into one contiguous chunk per worker and
// runs fn on each; with a single worker (or a single chunk) it runs inline.
// Chunks are disjoint, so each output row has exactly one writer.
func forRowRanges(workers, rows int, fn func(lo, hi int)) {
	if workers > rows {
		workers = rows
	}
	if workers <= 1 {
		fn(0, rows)
		return
	}
	chunk := (rows + workers - 1) / workers
	parallel.For(workers, (rows+chunk-1)/chunk, func(c int) {
		lo := c * chunk
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		fn(lo, hi)
	})
}

// kernelParallelism returns the worker count for a kernel of the given
// flop volume: 1 below the dispatch threshold, Workers() above it.
func kernelParallelism(flops int) int {
	if flops < minParallelFlops {
		return 1
	}
	return Workers()
}

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zero matrix of the given shape.
func New(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (len rows*cols) without copying.
func FromSlice(rows, cols int, data []float64) (*Matrix, error) {
	if len(data) != rows*cols {
		return nil, fmt.Errorf("tensor: data length %d != %d×%d", len(data), rows, cols)
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}, nil
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// CopyFrom copies src into m; shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) error {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		return errors.New("tensor: copy shape mismatch")
	}
	copy(m.Data, src.Data)
	return nil
}

// Zero resets all elements.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// RandomizeXavier fills m with Xavier/Glorot-uniform weights using src.
func (m *Matrix) RandomizeXavier(src *randx.Source) {
	limit := math.Sqrt(6.0 / float64(m.Rows+m.Cols))
	for i := range m.Data {
		m.Data[i] = src.Uniform(-limit, limit)
	}
}

// MatMul computes dst = a·b. dst must be preallocated with shape
// (a.Rows, b.Cols); a.Cols must equal b.Rows. Output rows are computed in
// cache-blocked panels and dispatched across the kernel worker pool above
// the size threshold; every dst element accumulates in ascending-k order,
// so the result is byte-identical to the serial triple loop.
func MatMul(dst, a, b *Matrix) error {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		return fmt.Errorf("tensor: matmul shape mismatch (%dx%d)·(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols)
	}
	workers := kernelParallelism(a.Rows * a.Cols * b.Cols)
	forRowRanges(workers, a.Rows, func(lo, hi int) {
		matMulRows(dst, a, b, lo, hi)
	})
	return nil
}

// matMulRows computes dst rows [lo, hi) of a·b. Rows are processed in
// panels so each kernelBlock-row slab of b is reused across the whole row
// panel while it is cache-hot; k panels advance in ascending order, which
// keeps the per-element accumulation order of the naive loop.
func matMulRows(dst, a, b *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		drow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
		for j := range drow {
			drow[j] = 0
		}
	}
	for i0 := lo; i0 < hi; i0 += kernelBlock {
		i1 := min(i0+kernelBlock, hi)
		for k0 := 0; k0 < a.Cols; k0 += kernelBlock {
			k1 := min(k0+kernelBlock, a.Cols)
			for i := i0; i < i1; i++ {
				arow := a.Data[i*a.Cols : (i+1)*a.Cols]
				drow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
				for k := k0; k < k1; k++ {
					av := arow[k]
					if av == 0 {
						continue
					}
					brow := b.Data[k*b.Cols : (k+1)*b.Cols]
					for j, bv := range brow {
						drow[j] += av * bv
					}
				}
			}
		}
	}
}

// MatMulATB computes dst = aᵀ·b (used for weight gradients). The dst rows
// (columns of a) are partitioned across workers; every element accumulates
// in ascending-i order, matching the serial loop bit for bit.
func MatMulATB(dst, a, b *Matrix) error {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		return errors.New("tensor: matmul-ATB shape mismatch")
	}
	workers := kernelParallelism(a.Rows * a.Cols * b.Cols)
	forRowRanges(workers, a.Cols, func(klo, khi int) {
		matMulATBRows(dst, a, b, klo, khi)
	})
	return nil
}

// matMulATBRows computes dst rows [klo, khi) of aᵀ·b.
func matMulATBRows(dst, a, b *Matrix, klo, khi int) {
	for k := klo; k < khi; k++ {
		drow := dst.Data[k*dst.Cols : (k+1)*dst.Cols]
		for j := range drow {
			drow[j] = 0
		}
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		brow := b.Data[i*b.Cols : (i+1)*b.Cols]
		for k := klo; k < khi; k++ {
			av := arow[k]
			if av == 0 {
				continue
			}
			drow := dst.Data[k*dst.Cols : (k+1)*dst.Cols]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatMulABT computes dst = a·bᵀ (used for input gradients). Output rows
// are partitioned across workers; each element is one full dot product in
// ascending-k order, identical to the serial loop.
func MatMulABT(dst, a, b *Matrix) error {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		return errors.New("tensor: matmul-ABT shape mismatch")
	}
	workers := kernelParallelism(a.Rows * a.Cols * b.Rows)
	forRowRanges(workers, a.Rows, func(lo, hi int) {
		matMulABTRows(dst, a, b, lo, hi)
	})
	return nil
}

// matMulABTRows computes dst rows [lo, hi) of a·bᵀ, reusing kernelBlock-row
// slabs of b across the row panel.
func matMulABTRows(dst, a, b *Matrix, lo, hi int) {
	for i0 := lo; i0 < hi; i0 += kernelBlock {
		i1 := min(i0+kernelBlock, hi)
		for j0 := 0; j0 < b.Rows; j0 += kernelBlock {
			j1 := min(j0+kernelBlock, b.Rows)
			for i := i0; i < i1; i++ {
				arow := a.Data[i*a.Cols : (i+1)*a.Cols]
				drow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
				for j := j0; j < j1; j++ {
					brow := b.Data[j*b.Cols : (j+1)*b.Cols]
					var sum float64
					for k, av := range arow {
						sum += av * brow[k]
					}
					drow[j] = sum
				}
			}
		}
	}
}

// AddRowVector adds row vector v (1×Cols) to every row of m in place.
func (m *Matrix) AddRowVector(v *Matrix) error {
	if v.Cols != m.Cols || v.Rows != 1 {
		return errors.New("tensor: row-vector shape mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j := range row {
			row[j] += v.Data[j]
		}
	}
	return nil
}

// AXPY computes m += alpha·x in place.
func (m *Matrix) AXPY(alpha float64, x *Matrix) error {
	if len(m.Data) != len(x.Data) {
		return errors.New("tensor: axpy shape mismatch")
	}
	for i, v := range x.Data {
		m.Data[i] += alpha * v
	}
	return nil
}

// Scale multiplies every element by alpha in place.
func (m *Matrix) Scale(alpha float64) {
	for i := range m.Data {
		m.Data[i] *= alpha
	}
}

// ReLU applies max(0, x) element-wise in place.
func (m *Matrix) ReLU() {
	for i, v := range m.Data {
		if v < 0 {
			m.Data[i] = 0
		}
	}
}

// ReLUBackward zeroes grad where act ≤ 0 (act holds post-ReLU values).
func ReLUBackward(grad, act *Matrix) error {
	if len(grad.Data) != len(act.Data) {
		return errors.New("tensor: relu-backward shape mismatch")
	}
	for i, v := range act.Data {
		if v <= 0 {
			grad.Data[i] = 0
		}
	}
	return nil
}

// SoftmaxCrossEntropy computes, per row of logits, the softmax distribution
// and the cross-entropy loss against integer labels. probs is overwritten
// with the softmax output; the mean loss is returned. Labels outside the
// class range return an error.
func SoftmaxCrossEntropy(probs, logits *Matrix, labels []int) (float64, error) {
	if probs.Rows != logits.Rows || probs.Cols != logits.Cols {
		return 0, errors.New("tensor: softmax shape mismatch")
	}
	if len(labels) != logits.Rows {
		return 0, errors.New("tensor: label count mismatch")
	}
	var loss float64
	for i := 0; i < logits.Rows; i++ {
		if labels[i] < 0 || labels[i] >= logits.Cols {
			return 0, fmt.Errorf("tensor: label %d out of range [0,%d)", labels[i], logits.Cols)
		}
		lrow := logits.Data[i*logits.Cols : (i+1)*logits.Cols]
		prow := probs.Data[i*probs.Cols : (i+1)*probs.Cols]
		maxv := lrow[0]
		for _, v := range lrow[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for j, v := range lrow {
			e := math.Exp(v - maxv)
			prow[j] = e
			sum += e
		}
		for j := range prow {
			prow[j] /= sum
		}
		loss += -math.Log(math.Max(prow[labels[i]], 1e-300))
	}
	return loss / float64(logits.Rows), nil
}

// SoftmaxCrossEntropyGrad writes dL/dlogits = (probs − onehot)/batch into
// grad (may alias probs).
func SoftmaxCrossEntropyGrad(grad, probs *Matrix, labels []int) error {
	if grad.Rows != probs.Rows || grad.Cols != probs.Cols || len(labels) != probs.Rows {
		return errors.New("tensor: softmax-grad shape mismatch")
	}
	inv := 1.0 / float64(probs.Rows)
	if grad != probs {
		copy(grad.Data, probs.Data)
	}
	for i, y := range labels {
		row := grad.Data[i*grad.Cols : (i+1)*grad.Cols]
		row[y] -= 1
		for j := range row {
			row[j] *= inv
		}
	}
	return nil
}

// ColumnSums writes the per-column sums of m into dst (1×Cols).
func ColumnSums(dst, m *Matrix) error {
	if dst.Rows != 1 || dst.Cols != m.Cols {
		return errors.New("tensor: column-sums shape mismatch")
	}
	dst.Zero()
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			dst.Data[j] += v
		}
	}
	return nil
}

// ArgmaxRows returns the index of the maximum element of each row.
func (m *Matrix) ArgmaxRows() []int {
	out := make([]int, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		out[i] = best
	}
	return out
}

// RowSlice returns a view of rows [lo, hi) of m (no copy).
func (m *Matrix) RowSlice(lo, hi int) (*Matrix, error) {
	if lo < 0 || hi > m.Rows || lo >= hi {
		return nil, fmt.Errorf("tensor: row slice [%d,%d) out of range", lo, hi)
	}
	return &Matrix{Rows: hi - lo, Cols: m.Cols, Data: m.Data[lo*m.Cols : hi*m.Cols]}, nil
}

// Frobenius returns the Frobenius norm of m.
func (m *Matrix) Frobenius() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}
