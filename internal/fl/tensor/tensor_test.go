package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"tradefl/internal/randx"
)

func TestFromSlice(t *testing.T) {
	if _, err := FromSlice(2, 2, []float64{1, 2, 3}); err == nil {
		t.Error("FromSlice accepted wrong length")
	}
	m, err := FromSlice(2, 2, []float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 {
		t.Errorf("At(1,0) = %v, want 3", m.At(1, 0))
	}
}

func TestSetAtCloneZero(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Error("Set/At roundtrip failed")
	}
	c := m.Clone()
	c.Set(1, 2, 9)
	if m.At(1, 2) != 7 {
		t.Error("Clone shares storage")
	}
	m.Zero()
	if m.At(1, 2) != 0 {
		t.Error("Zero failed")
	}
}

func TestMatMulKnownValues(t *testing.T) {
	a, _ := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b, _ := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	dst := New(2, 2)
	if err := MatMul(dst, a, b); err != nil {
		t.Fatal(err)
	}
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if dst.Data[i] != w {
			t.Errorf("dst[%d] = %v, want %v", i, dst.Data[i], w)
		}
	}
	if err := MatMul(New(2, 3), a, b); err == nil {
		t.Error("MatMul accepted bad dst shape")
	}
}

func TestMatMulVariantsAgree(t *testing.T) {
	// Property: MatMulATB(a,b) == MatMul(aᵀ, b) and MatMulABT(a,b) ==
	// MatMul(a, bᵀ) for random matrices.
	src := randx.New(5)
	for trial := 0; trial < 20; trial++ {
		n, k, m := 2+src.Intn(5), 2+src.Intn(5), 2+src.Intn(5)
		a := New(n, k)
		b := New(n, m)
		for i := range a.Data {
			a.Data[i] = src.Normal(0, 1)
		}
		for i := range b.Data {
			b.Data[i] = src.Normal(0, 1)
		}
		// aᵀ·b via MatMulATB.
		got := New(k, m)
		if err := MatMulATB(got, a, b); err != nil {
			t.Fatal(err)
		}
		at := New(k, n)
		for i := 0; i < n; i++ {
			for j := 0; j < k; j++ {
				at.Set(j, i, a.At(i, j))
			}
		}
		want := New(k, m)
		if err := MatMul(want, at, b); err != nil {
			t.Fatal(err)
		}
		for i := range want.Data {
			if math.Abs(got.Data[i]-want.Data[i]) > 1e-9 {
				t.Fatalf("ATB mismatch at %d", i)
			}
		}
		// a·bᵀ via MatMulABT: shapes (n,k)·(m,k)ᵀ -> (n,m).
		c := New(m, k)
		for i := range c.Data {
			c.Data[i] = src.Normal(0, 1)
		}
		got2 := New(n, m)
		if err := MatMulABT(got2, a, c); err != nil {
			t.Fatal(err)
		}
		ct := New(k, m)
		for i := 0; i < m; i++ {
			for j := 0; j < k; j++ {
				ct.Set(j, i, c.At(i, j))
			}
		}
		want2 := New(n, m)
		if err := MatMul(want2, a, ct); err != nil {
			t.Fatal(err)
		}
		for i := range want2.Data {
			if math.Abs(got2.Data[i]-want2.Data[i]) > 1e-9 {
				t.Fatalf("ABT mismatch at %d", i)
			}
		}
	}
}

func TestAddRowVectorAXPYScale(t *testing.T) {
	m, _ := FromSlice(2, 2, []float64{1, 2, 3, 4})
	v, _ := FromSlice(1, 2, []float64{10, 20})
	if err := m.AddRowVector(v); err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 11 || m.At(1, 1) != 24 {
		t.Errorf("AddRowVector result %v", m.Data)
	}
	x, _ := FromSlice(2, 2, []float64{1, 1, 1, 1})
	if err := m.AXPY(2, x); err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 13 {
		t.Errorf("AXPY result %v", m.Data)
	}
	m.Scale(0.5)
	if m.At(0, 0) != 6.5 {
		t.Errorf("Scale result %v", m.Data)
	}
	if err := m.AXPY(1, New(1, 1)); err == nil {
		t.Error("AXPY accepted shape mismatch")
	}
	if err := m.AddRowVector(New(2, 2)); err == nil {
		t.Error("AddRowVector accepted non-row vector")
	}
}

func TestReLUAndBackward(t *testing.T) {
	m, _ := FromSlice(1, 4, []float64{-1, 0, 2, -3})
	m.ReLU()
	want := []float64{0, 0, 2, 0}
	for i, w := range want {
		if m.Data[i] != w {
			t.Errorf("ReLU[%d] = %v, want %v", i, m.Data[i], w)
		}
	}
	grad, _ := FromSlice(1, 4, []float64{5, 5, 5, 5})
	if err := ReLUBackward(grad, m); err != nil {
		t.Fatal(err)
	}
	wantG := []float64{0, 0, 5, 0}
	for i, w := range wantG {
		if grad.Data[i] != w {
			t.Errorf("ReLUBackward[%d] = %v, want %v", i, grad.Data[i], w)
		}
	}
}

func TestSoftmaxCrossEntropy(t *testing.T) {
	logits, _ := FromSlice(2, 3, []float64{1, 1, 1, 0, 0, 10})
	probs := New(2, 3)
	loss, err := SoftmaxCrossEntropy(probs, logits, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Row 0: uniform → loss ln 3; row 1: ≈ certain → loss ≈ 0.
	want := (math.Log(3) + 9.08e-5) / 2
	if math.Abs(loss-want) > 1e-3 {
		t.Errorf("loss = %v, want ≈ %v", loss, want)
	}
	// Probabilities sum to one per row.
	for i := 0; i < 2; i++ {
		var s float64
		for j := 0; j < 3; j++ {
			s += probs.At(i, j)
		}
		if math.Abs(s-1) > 1e-12 {
			t.Errorf("row %d: probs sum %v", i, s)
		}
	}
	if _, err := SoftmaxCrossEntropy(probs, logits, []int{0, 5}); err == nil {
		t.Error("accepted out-of-range label")
	}
	if _, err := SoftmaxCrossEntropy(probs, logits, []int{0}); err == nil {
		t.Error("accepted label count mismatch")
	}
}

func TestSoftmaxOverflowSafe(t *testing.T) {
	logits, _ := FromSlice(1, 2, []float64{1000, -1000})
	probs := New(1, 2)
	loss, err := SoftmaxCrossEntropy(probs, logits, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Errorf("loss = %v, want finite", loss)
	}
}

func TestSoftmaxGradSumsToZeroQuick(t *testing.T) {
	// Property: each gradient row sums to zero (softmax grad identity).
	src := randx.New(6)
	f := func() bool {
		rows, cols := 1+src.Intn(5), 2+src.Intn(5)
		logits := New(rows, cols)
		labels := make([]int, rows)
		for i := range logits.Data {
			logits.Data[i] = src.Normal(0, 3)
		}
		for i := range labels {
			labels[i] = src.Intn(cols)
		}
		probs := New(rows, cols)
		if _, err := SoftmaxCrossEntropy(probs, logits, labels); err != nil {
			return false
		}
		if err := SoftmaxCrossEntropyGrad(probs, probs, labels); err != nil {
			return false
		}
		for i := 0; i < rows; i++ {
			var s float64
			for j := 0; j < cols; j++ {
				s += probs.At(i, j)
			}
			if math.Abs(s) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestColumnSums(t *testing.T) {
	m, _ := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	dst := New(1, 3)
	if err := ColumnSums(dst, m); err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 7, 9}
	for i, w := range want {
		if dst.Data[i] != w {
			t.Errorf("ColumnSums[%d] = %v, want %v", i, dst.Data[i], w)
		}
	}
}

func TestArgmaxRows(t *testing.T) {
	m, _ := FromSlice(2, 3, []float64{0, 5, 2, 9, 1, 1})
	got := m.ArgmaxRows()
	if got[0] != 1 || got[1] != 0 {
		t.Errorf("ArgmaxRows = %v", got)
	}
}

func TestRowSlice(t *testing.T) {
	m, _ := FromSlice(3, 2, []float64{1, 2, 3, 4, 5, 6})
	s, err := m.RowSlice(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Rows != 2 || s.At(0, 0) != 3 {
		t.Errorf("RowSlice wrong: %+v", s)
	}
	// Views share storage.
	s.Set(0, 0, 99)
	if m.At(1, 0) != 99 {
		t.Error("RowSlice should be a view")
	}
	if _, err := m.RowSlice(2, 2); err == nil {
		t.Error("RowSlice accepted empty range")
	}
	if _, err := m.RowSlice(-1, 2); err == nil {
		t.Error("RowSlice accepted negative lo")
	}
}

func TestRandomizeXavierBounded(t *testing.T) {
	m := New(10, 20)
	m.RandomizeXavier(randx.New(1))
	limit := math.Sqrt(6.0 / 30.0)
	for _, v := range m.Data {
		if v < -limit || v > limit {
			t.Fatalf("weight %v outside ±%v", v, limit)
		}
	}
	if m.Frobenius() == 0 {
		t.Error("Xavier init produced all zeros")
	}
}

func TestCopyFrom(t *testing.T) {
	a, _ := FromSlice(1, 2, []float64{1, 2})
	b := New(1, 2)
	if err := b.CopyFrom(a); err != nil {
		t.Fatal(err)
	}
	if b.At(0, 1) != 2 {
		t.Error("CopyFrom failed")
	}
	if err := b.CopyFrom(New(2, 2)); err == nil {
		t.Error("CopyFrom accepted shape mismatch")
	}
}
