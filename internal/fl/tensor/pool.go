package tensor

import (
	"sync"

	"tradefl/internal/arena"
)

// headerPool recycles Matrix headers so Get/Put cycles allocate neither the
// backing array (arena-pooled) nor the struct.
var headerPool = sync.Pool{New: func() any { return new(Matrix) }}

// Get returns a pooled rows×cols matrix whose contents are UNSPECIFIED —
// the caller must fully initialize it before reading (every kernel in this
// package that takes a dst writes all of it). Use GetZeroed when zeros are
// required. Return the matrix with Put when done; steady-state Get/Put
// cycles of stable shapes are allocation-free.
func Get(rows, cols int) *Matrix {
	m := headerPool.Get().(*Matrix)
	m.Rows, m.Cols = rows, cols
	m.Data = arena.Floats(rows * cols)
	return m
}

// GetZeroed is Get with the contents cleared, interchangeable with New.
func GetZeroed(rows, cols int) *Matrix {
	m := headerPool.Get().(*Matrix)
	m.Rows, m.Cols = rows, cols
	m.Data = arena.FloatsZeroed(rows * cols)
	return m
}

// Put returns a matrix obtained from Get/GetZeroed to the pool. m must not
// be used afterwards (its data may be handed to another goroutine). Safe on
// nil and on matrices not obtained from Get — unpooled backing arrays are
// dropped rather than recycled.
func Put(m *Matrix) {
	if m == nil {
		return
	}
	arena.PutFloats(m.Data)
	m.Rows, m.Cols, m.Data = 0, 0, nil
	headerPool.Put(m)
}
