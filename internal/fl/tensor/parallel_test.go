package tensor

import (
	"testing"

	"tradefl/internal/randx"
)

// The naive references reproduce the kernels' per-element accumulation
// order (ascending k or i, zero products skipped where the kernel skips
// them), so the comparisons below can demand byte-identical results.

func naiveMatMul(dst, a, b *Matrix) {
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var sum float64
			for k := 0; k < a.Cols; k++ {
				if av := a.At(i, k); av != 0 {
					sum += av * b.At(k, j)
				}
			}
			dst.Set(i, j, sum)
		}
	}
}

func naiveMatMulATB(dst, a, b *Matrix) {
	for k := 0; k < a.Cols; k++ {
		for j := 0; j < b.Cols; j++ {
			var sum float64
			for i := 0; i < a.Rows; i++ {
				if av := a.At(i, k); av != 0 {
					sum += av * b.At(i, j)
				}
			}
			dst.Set(k, j, sum)
		}
	}
}

func naiveMatMulABT(dst, a, b *Matrix) {
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Rows; j++ {
			var sum float64
			for k := 0; k < a.Cols; k++ {
				sum += a.At(i, k) * b.At(j, k)
			}
			dst.Set(i, j, sum)
		}
	}
}

func random(rows, cols int, src *randx.Source) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = src.Uniform(-1, 1)
		if i%17 == 0 {
			m.Data[i] = 0 // exercise the zero-skip branch
		}
	}
	return m
}

func equalExact(t *testing.T, name string, got, want *Matrix) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape (%d,%d) != (%d,%d)", name, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i, v := range got.Data {
		if v != want.Data[i] {
			t.Fatalf("%s: element %d = %v, want %v (must be byte-identical)", name, i, v, want.Data[i])
		}
	}
}

// TestKernelsMatchNaiveReference checks all three kernels against the
// reference loops for every worker count on shapes spanning the dispatch
// threshold and straddling kernelBlock boundaries.
func TestKernelsMatchNaiveReference(t *testing.T) {
	defer SetWorkers(0)
	src := randx.New(11)
	for _, sh := range []struct{ m, k, n int }{
		{1, 1, 1},
		{3, 5, 7},
		{16, 16, 16},
		{63, 65, 67},
		{64, 64, 64},
		{128, 33, 90},
		{200, 128, 10},
	} {
		a := random(sh.m, sh.k, src)  // m×k
		b := random(sh.k, sh.n, src)  // k×n
		g := random(sh.m, sh.n, src)  // m×n (gradient-shaped)
		bt := random(sh.n, sh.k, src) // n×k (transposed-b for ABT)

		wantMul := New(sh.m, sh.n)
		naiveMatMul(wantMul, a, b)
		wantATB := New(sh.k, sh.n)
		naiveMatMulATB(wantATB, a, g)
		wantABT := New(sh.m, sh.n)
		naiveMatMulABT(wantABT, a, bt)

		for _, workers := range []int{1, 2, 8} {
			SetWorkers(workers)

			gotMul := New(sh.m, sh.n)
			if err := MatMul(gotMul, a, b); err != nil {
				t.Fatalf("MatMul %+v workers %d: %v", sh, workers, err)
			}
			equalExact(t, "MatMul", gotMul, wantMul)

			gotATB := New(sh.k, sh.n)
			if err := MatMulATB(gotATB, a, g); err != nil {
				t.Fatalf("MatMulATB %+v workers %d: %v", sh, workers, err)
			}
			equalExact(t, "MatMulATB", gotATB, wantATB)

			gotABT := New(sh.m, sh.n)
			if err := MatMulABT(gotABT, a, bt); err != nil {
				t.Fatalf("MatMulABT %+v workers %d: %v", sh, workers, err)
			}
			equalExact(t, "MatMulABT", gotABT, wantABT)
		}
	}
}

// TestKernelsSerialVsParallel compares Workers=1 output directly against
// Workers=8 for threshold-crossing sizes with odd block remainders.
func TestKernelsSerialVsParallel(t *testing.T) {
	defer SetWorkers(0)
	src := randx.New(29)
	for _, sh := range []struct{ m, k, n int }{
		{5, 9, 4},       // below threshold: inline path
		{80, 70, 60},    // above threshold
		{129, 257, 100}, // multiple blocks, odd remainders
	} {
		a := random(sh.m, sh.k, src)
		b := random(sh.k, sh.n, src)
		g := random(sh.m, sh.n, src)
		bt := random(sh.n, sh.k, src)

		kernels := []struct {
			name string
			run  func() *Matrix
		}{
			{"MatMul", func() *Matrix {
				dst := New(sh.m, sh.n)
				if err := MatMul(dst, a, b); err != nil {
					t.Fatal(err)
				}
				return dst
			}},
			{"MatMulATB", func() *Matrix {
				dst := New(sh.k, sh.n)
				if err := MatMulATB(dst, a, g); err != nil {
					t.Fatal(err)
				}
				return dst
			}},
			{"MatMulABT", func() *Matrix {
				dst := New(sh.m, sh.n)
				if err := MatMulABT(dst, a, bt); err != nil {
					t.Fatal(err)
				}
				return dst
			}},
		}
		for _, kn := range kernels {
			SetWorkers(1)
			serial := kn.run()
			SetWorkers(8)
			par := kn.run()
			equalExact(t, kn.name, par, serial)
		}
	}
}
