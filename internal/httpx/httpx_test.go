package httpx

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestReadBodyWithinLimit(t *testing.T) {
	for _, n := range []int{0, 1, 16, 64} {
		r := httptest.NewRequest(http.MethodPost, "/", strings.NewReader(strings.Repeat("x", n)))
		body, err := ReadBody(r, 64)
		if err != nil {
			t.Fatalf("ReadBody(%d bytes, limit 64): %v", n, err)
		}
		if len(body) != n {
			t.Fatalf("ReadBody(%d bytes) returned %d bytes", n, len(body))
		}
	}
}

func TestReadBodyOverLimit(t *testing.T) {
	r := httptest.NewRequest(http.MethodPost, "/", strings.NewReader(strings.Repeat("x", 65)))
	_, err := ReadBody(r, 64)
	if !errors.Is(err, ErrBodyTooLarge) {
		t.Fatalf("ReadBody over limit: got %v, want ErrBodyTooLarge", err)
	}
	// httptest sets ContentLength from the reader, so the error should
	// name both sizes.
	if !strings.Contains(err.Error(), "65 > 64") {
		t.Fatalf("ReadBody error %q does not report sizes", err)
	}
}

func TestReadBodyOverLimitUnknownLength(t *testing.T) {
	r := httptest.NewRequest(http.MethodPost, "/", io.NopCloser(strings.NewReader(strings.Repeat("x", 100))))
	r.ContentLength = -1 // chunked-style: total unknown up front
	_, err := ReadBody(r, 64)
	if !errors.Is(err, ErrBodyTooLarge) {
		t.Fatalf("ReadBody over limit: got %v, want ErrBodyTooLarge", err)
	}
}

func TestHardenFillsZeroFields(t *testing.T) {
	srv := Harden(&http.Server{ReadTimeout: time.Minute})
	if srv.ReadTimeout != time.Minute {
		t.Fatalf("Harden overwrote explicit ReadTimeout: %v", srv.ReadTimeout)
	}
	if srv.ReadHeaderTimeout != DefaultReadHeaderTimeout ||
		srv.WriteTimeout != DefaultWriteTimeout ||
		srv.IdleTimeout != DefaultIdleTimeout {
		t.Fatalf("Harden left zero timeouts: %+v", srv)
	}
}

func TestNoDeadlinesOnRealServer(t *testing.T) {
	// A write deadline shorter than the handler's runtime cuts the
	// response unless the handler opts out.
	slow := func(optOut bool) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if optOut {
				if !NoDeadlines(w, r) {
					t.Error("NoDeadlines unsupported on net/http connection")
				}
			}
			w.WriteHeader(http.StatusOK)
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
			time.Sleep(150 * time.Millisecond)
			_, _ = io.WriteString(w, "done")
		}
	}
	for _, tc := range []struct {
		name   string
		optOut bool
		wantOK bool
	}{
		{"deadline-cuts-slow-handler", false, false},
		{"opt-out-survives", true, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			srv := httptest.NewUnstartedServer(slow(tc.optOut))
			srv.Config.WriteTimeout = 50 * time.Millisecond
			srv.Start()
			defer srv.Close()
			resp, err := http.Get(srv.URL)
			if err != nil {
				t.Fatalf("GET: %v", err)
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			gotOK := err == nil && string(body) == "done"
			if gotOK != tc.wantOK {
				t.Fatalf("full body read ok = %v (err %v, body %q), want %v", gotOK, err, body, tc.wantOK)
			}
		})
	}
}

func TestShutdownDrainsInFlight(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(started)
		<-release
		_, _ = io.WriteString(w, "drained")
	})}
	ts := httptest.NewUnstartedServer(nil)
	ts.Config = srv
	ts.Start()
	defer ts.Close()

	type result struct {
		body string
		err  error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := http.Get(ts.URL)
		if err != nil {
			got <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		got <- result{body: string(b), err: err}
	}()
	<-started
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(release)
	}()
	if err := Shutdown(srv, 2*time.Second); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	r := <-got
	if r.err != nil || r.body != "drained" {
		t.Fatalf("in-flight request not drained: body %q err %v", r.body, r.err)
	}
}

func TestShutdownFallsBackToClose(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	started := make(chan struct{})
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(started)
		// Never finishes within the shutdown deadline; Close must cut it.
		select {
		case <-release:
		case <-r.Context().Done():
		}
	})}
	ts := httptest.NewUnstartedServer(nil)
	ts.Config = srv
	ts.Start()
	defer ts.Close()

	done := make(chan struct{})
	go func() {
		resp, err := http.Get(ts.URL)
		if err == nil {
			resp.Body.Close()
		}
		close(done)
	}()
	<-started
	start := time.Now()
	err := Shutdown(srv, 100*time.Millisecond)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown with stuck handler: got %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Shutdown took %v despite 100ms bound", elapsed)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("stuck connection survived the Close fallback")
	}
}
