// Package httpx holds the shared hardening primitives of every TradeFL
// HTTP edge (the chain JSON-RPC server, the obs diagnostics server and the
// tradefl-server gateway): explicit request-body limits that reject
// oversized payloads instead of silently truncating them, full server
// timeouts against request-body slowloris, per-handler deadline opt-outs
// for legitimately long-lived routes (pprof profiles, SSE streams), and
// bounded graceful shutdown that drains in-flight responses before
// falling back to a hard close.
package httpx

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"
)

// ErrBodyTooLarge reports a request body that exceeded the explicit limit
// passed to ReadBody. Edges translate it into their protocol's
// "request too large" shape (HTTP 413, JSON-RPC -32001) instead of the
// opaque parse error a silent truncation produces.
var ErrBodyTooLarge = errors.New("request body exceeds limit")

// ReadBody reads the whole request body up to limit bytes. A body longer
// than limit returns ErrBodyTooLarge (wrapped with both sizes when the
// declared Content-Length reveals the total) rather than the truncated
// prefix — truncation turns a too-large request into a garbled one, and
// the caller's JSON decoder would misreport it as a parse error.
func ReadBody(r *http.Request, limit int64) ([]byte, error) {
	// Read one byte past the limit: an exactly-limit-sized body is legal,
	// and the sentinel byte distinguishes "fits" from "was cut".
	body, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
	if err != nil {
		return nil, err
	}
	if int64(len(body)) > limit {
		if r.ContentLength > limit {
			return nil, fmt.Errorf("%w: %d > %d bytes", ErrBodyTooLarge, r.ContentLength, limit)
		}
		return nil, fmt.Errorf("%w: limit %d bytes", ErrBodyTooLarge, limit)
	}
	return body, nil
}

// Default edge timeouts. ReadTimeout covers the whole request (headers +
// body), closing the slowloris hole left by a bare ReadHeaderTimeout;
// WriteTimeout bounds the response of ordinary request/response routes —
// streaming and profiling handlers opt out per request via NoDeadlines.
const (
	DefaultReadHeaderTimeout = 5 * time.Second
	DefaultReadTimeout       = 30 * time.Second
	DefaultWriteTimeout      = 60 * time.Second
	DefaultIdleTimeout       = 120 * time.Second
	// DefaultShutdownTimeout bounds a graceful Shutdown before it falls
	// back to a hard Close.
	DefaultShutdownTimeout = 5 * time.Second
)

// Harden fills in the server's zero timeout fields with the package
// defaults. Explicitly set fields are left alone, so an edge can still
// choose tighter or looser bounds per field.
func Harden(srv *http.Server) *http.Server {
	if srv.ReadHeaderTimeout == 0 {
		srv.ReadHeaderTimeout = DefaultReadHeaderTimeout
	}
	if srv.ReadTimeout == 0 {
		srv.ReadTimeout = DefaultReadTimeout
	}
	if srv.WriteTimeout == 0 {
		srv.WriteTimeout = DefaultWriteTimeout
	}
	if srv.IdleTimeout == 0 {
		srv.IdleTimeout = DefaultIdleTimeout
	}
	return srv
}

// NoDeadlines clears the connection's read and write deadlines for the
// current request — the explicit opt-out long-lived handlers (pprof
// CPU profiles and execution traces, SSE progress streams) use to run
// past the server-wide ReadTimeout/WriteTimeout without loosening the
// limits for every other route. It reports whether the underlying
// connection supported deadline control.
func NoDeadlines(w http.ResponseWriter, r *http.Request) bool {
	rc := http.NewResponseController(w)
	ok := true
	if err := rc.SetReadDeadline(time.Time{}); err != nil {
		ok = false
	}
	if err := rc.SetWriteDeadline(time.Time{}); err != nil {
		ok = false
	}
	return ok
}

// SetWriteDeadline gives the current response until d from now to finish —
// the per-route deadline of handlers that want a bound different from the
// server-wide WriteTimeout.
func SetWriteDeadline(w http.ResponseWriter, d time.Duration) error {
	return http.NewResponseController(w).SetWriteDeadline(time.Now().Add(d))
}

// Shutdown drains srv gracefully for at most timeout (0 uses
// DefaultShutdownTimeout): in-flight responses complete, new connections
// are refused. If the deadline expires with connections still active it
// falls back to Close so shutdown always terminates, and returns the
// deadline error.
func Shutdown(srv *http.Server, timeout time.Duration) error {
	if timeout <= 0 {
		timeout = DefaultShutdownTimeout
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	err := srv.Shutdown(ctx)
	if errors.Is(err, context.DeadlineExceeded) {
		if cerr := srv.Close(); cerr != nil && !errors.Is(cerr, http.ErrServerClosed) {
			return cerr
		}
		return err
	}
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}
