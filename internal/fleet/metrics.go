package fleet

import "tradefl/internal/obs"

// Fleet-engine telemetry (tradefl_fleet_*): batch throughput, planner
// decisions and warm-state effectiveness. Registered at init so the names
// are present (at zero) before the first batch.
var (
	mBatches   = obs.NewCounter("tradefl_fleet_batches_total", "batches submitted to the fleet engine")
	mInstances = obs.NewCounter("tradefl_fleet_instances_total", "game instances solved by the fleet engine")
	mErrors    = obs.NewCounter("tradefl_fleet_errors_total", "instances whose solve returned an error")
	mQueue     = obs.NewGauge("tradefl_fleet_queue_depth", "instances admitted to in-flight batches and not yet solved")
	mRate      = obs.NewGauge("tradefl_fleet_solves_per_sec", "throughput of the last completed batch (instances / wall second)")

	mPlanDBR       = obs.NewCounter("tradefl_fleet_plan_dbr_total", "instances the planner routed to distributed best response")
	mPlanPruned    = obs.NewCounter("tradefl_fleet_plan_pruned_total", "instances the planner routed to the pruned CGBD master")
	mPlanTraversal = obs.NewCounter("tradefl_fleet_plan_traversal_total", "instances the planner routed to the traversal CGBD master")

	mWarmHits   = obs.NewCounter("tradefl_fleet_warm_hits_total", "instances served verbatim from the warm result cache")
	mWarmMisses = obs.NewCounter("tradefl_fleet_warm_misses_total", "instances solved fresh (no usable warm result)")

	mSolveSec = obs.NewHistogram("tradefl_fleet_solve_seconds", "wall time of one fleet-scheduled instance solve", obs.TimeBuckets)
	mBatchSec = obs.NewHistogram("tradefl_fleet_batch_seconds", "wall time of one fleet batch", obs.TimeBuckets)

	mAudits      = obs.NewCounter("tradefl_fleet_audits_total", "batch outputs re-solved cold and compared by the sampled audit")
	mCalibrateNs = obs.NewGauge("tradefl_fleet_calibration_ns", "wall nanoseconds spent by the last cost-model self-calibration")
)

// planCounter maps a concrete plan to its decision counter.
func planCounter(p Plan) *obs.Counter {
	switch p {
	case PlanPruned:
		return mPlanPruned
	case PlanTraversal:
		return mPlanTraversal
	default:
		return mPlanDBR
	}
}
