// Package fleet batches thousands of coopetition-game solves through a
// shared worker pool, choosing the solver for each instance with a
// calibrated cost model and retaining warm solver state across batches and
// campaign epochs — the many-instances axis of the ROADMAP (mechanism
// parameter sweeps, per-epoch re-solves, mechanism-as-a-service gateways).
//
// Determinism contract: per-instance results are byte-identical to solving
// the same instance alone with the chosen plan. The planner's decision is a
// pure function of the instance's statistics and the (fixed) cost profile —
// never of load, timing, or cache state — so a batch and a one-at-a-time
// sequence pick identical plans; warm caches only short-circuit a solve
// when they hold the exact result that solve would recompute.
package fleet

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strings"

	"tradefl/internal/game"
)

// Plan names a solving strategy for one instance.
type Plan int

// Plans. PlanAuto is resolved per instance by the cost model; the others
// force a fixed strategy.
const (
	// PlanAuto lets the planner pick the cheapest predicted plan.
	PlanAuto Plan = iota
	// PlanDBR solves with distributed best response (Algorithm 2).
	PlanDBR
	// PlanPruned solves with CGBD and the pruned depth-first master.
	PlanPruned
	// PlanTraversal solves with CGBD and the exhaustive traversal master.
	PlanTraversal
)

// String returns the CLI spelling of the plan.
func (p Plan) String() string {
	switch p {
	case PlanAuto:
		return "auto"
	case PlanDBR:
		return "dbr"
	case PlanPruned:
		return "pruned"
	case PlanTraversal:
		return "traversal"
	}
	return fmt.Sprintf("plan(%d)", int(p))
}

// ParsePlan parses a -plan flag value.
func ParsePlan(s string) (Plan, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "auto":
		return PlanAuto, nil
	case "dbr":
		return PlanDBR, nil
	case "pruned":
		return PlanPruned, nil
	case "traversal":
		return PlanTraversal, nil
	}
	return 0, fmt.Errorf("fleet: unknown plan %q (want auto, dbr, pruned or traversal)", s)
}

// Stats are the per-instance features the planner decides from. They are
// derived from the config alone (plus the solve tolerance), so identical
// instances always produce identical decisions.
type Stats struct {
	// N is the organization count.
	N int
	// MaxLevels is the widest per-organization CPU grid.
	MaxLevels int
	// MeanLevels is the mean CPU-grid width.
	MeanLevels float64
	// Grid is the full f-grid cardinality Π m_i (float; +Inf for grids
	// beyond float range, which only strengthens the traversal exclusion).
	Grid float64
	// Epsilon is the CGBD convergence tolerance the solve would use.
	Epsilon float64
	// WarmScratch reports whether shape-matched warm solver state is
	// available. It may only influence byte-identical knobs (workers,
	// incremental engine) — never the plan — so cache state cannot make a
	// batch diverge from a one-at-a-time sequence.
	WarmScratch bool
}

// StatsOf derives the planner features of one instance. epsilon is the
// CGBD tolerance the engine would solve with (0 = the gbd default).
func StatsOf(cfg *game.Config, epsilon float64) Stats {
	if epsilon == 0 {
		epsilon = 1e-6
	}
	st := Stats{N: cfg.N(), Grid: 1, Epsilon: epsilon}
	total := 0
	for i := range cfg.Orgs {
		m := len(cfg.Orgs[i].CPULevels)
		total += m
		if m > st.MaxLevels {
			st.MaxLevels = m
		}
		st.Grid *= float64(m)
	}
	if st.N > 0 {
		st.MeanLevels = float64(total) / float64(st.N)
	}
	return st
}

// CostProfile holds the calibrated coefficients of the per-plan cost
// model, in nanoseconds. The functional forms are fixed (fitted offline on
// the measured solver scalings, DESIGN.md §12); calibration refits only
// the scale constants to the host:
//
//	cost(dbr)       = DBRBase       + DBRUnit·N^1.5·m̄
//	cost(pruned)    = PrunedBase    + PrunedUnit·G^0.4·ε-factor
//	cost(traversal) = TraversalBase + TraversalUnit·G·ε-factor
//
// where m̄ is the mean grid width, G = Π m_i the full grid cardinality, and
// the ε-factor mildly scales CGBD cost with the tolerance (tighter ε, more
// iterations).
type CostProfile struct {
	// Version guards against stale persisted profiles.
	Version int `json:"version"`
	// CalibratedNs records the calibration wall budget (0 for built-ins).
	CalibratedNs float64 `json:"calibratedNs,omitempty"`

	DBRBase       float64 `json:"dbrBaseNs"`
	DBRUnit       float64 `json:"dbrUnitNs"`
	PrunedBase    float64 `json:"prunedBaseNs"`
	PrunedUnit    float64 `json:"prunedUnitNs"`
	TraversalBase float64 `json:"traversalBaseNs"`
	TraversalUnit float64 `json:"traversalUnitNs"`
}

// profileVersion is bumped whenever the cost-model forms change, so a
// persisted profile calibrated against old forms is rejected on load.
const profileVersion = 1

// DefaultProfile returns the built-in cost profile: coefficients fitted on
// the reference host's measured solver timings. It is the safe fallback
// when no calibration profile exists — the planner works out of the box,
// only the crossover points are approximate.
func DefaultProfile() *CostProfile {
	return &CostProfile{
		Version:       profileVersion,
		DBRBase:       10_000,
		DBRUnit:       1_500,
		PrunedBase:    10_000,
		PrunedUnit:    1_300,
		TraversalBase: 8_000,
		TraversalUnit: 120,
	}
}

// maxTraversalGrid caps the grid size the planner will ever predict a
// finite traversal cost for; beyond it the exhaustive master is excluded
// outright regardless of calibration.
const maxTraversalGrid = 1e8

// epsFactor scales CGBD cost with the convergence tolerance: tighter ε
// takes more iterations. Mild and clamped so a miscalibrated ε cannot
// dominate the structural terms.
func epsFactor(epsilon float64) float64 {
	if epsilon <= 0 {
		return 1
	}
	f := 1 + 0.1*math.Log10(1e-6/epsilon)
	return math.Min(2, math.Max(0.5, f))
}

// Predict returns the modeled solve cost of plan p on an instance with
// statistics st, in nanoseconds. PlanAuto predicts the minimum over the
// concrete plans.
func (c *CostProfile) Predict(p Plan, st Stats) float64 {
	switch p {
	case PlanDBR:
		return c.DBRBase + c.DBRUnit*math.Pow(float64(st.N), 1.5)*st.MeanLevels
	case PlanPruned:
		return c.PrunedBase + c.PrunedUnit*math.Pow(st.Grid, 0.4)*epsFactor(st.Epsilon)
	case PlanTraversal:
		if st.Grid > maxTraversalGrid {
			return math.Inf(1)
		}
		return c.TraversalBase + c.TraversalUnit*st.Grid*epsFactor(st.Epsilon)
	case PlanAuto:
		return math.Min(c.Predict(PlanPruned, st),
			math.Min(c.Predict(PlanTraversal, st), c.Predict(PlanDBR, st)))
	}
	return math.Inf(1)
}

// valid rejects profiles that cannot order plans sensibly.
func (c *CostProfile) valid() error {
	if c.Version != profileVersion {
		return fmt.Errorf("fleet: cost profile version %d, want %d (recalibrate)", c.Version, profileVersion)
	}
	for name, v := range map[string]float64{
		"dbrUnitNs":       c.DBRUnit,
		"prunedUnitNs":    c.PrunedUnit,
		"traversalUnitNs": c.TraversalUnit,
	} {
		if !(v > 0) || math.IsInf(v, 0) {
			return fmt.Errorf("fleet: cost profile %s = %v, want a positive finite coefficient", name, v)
		}
	}
	for name, v := range map[string]float64{
		"dbrBaseNs":       c.DBRBase,
		"prunedBaseNs":    c.PrunedBase,
		"traversalBaseNs": c.TraversalBase,
	} {
		if v < 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			return fmt.Errorf("fleet: cost profile %s = %v, want a non-negative finite base", name, v)
		}
	}
	return nil
}

// Save persists the profile as JSON.
func (c *CostProfile) Save(path string) error {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadProfile reads a persisted calibration profile, rejecting stale
// versions and degenerate coefficients.
func LoadProfile(path string) (*CostProfile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	c := &CostProfile{}
	if err := json.Unmarshal(data, c); err != nil {
		return nil, fmt.Errorf("fleet: %s: %w", path, err)
	}
	if err := c.valid(); err != nil {
		return nil, fmt.Errorf("%w (%s)", err, path)
	}
	return c, nil
}

// Decision is the planner's verdict for one instance. Plan selects the
// solver; Workers and Incremental tune byte-identical knobs (within-
// instance sharding, evaluation engine) — output bytes never depend on
// them, which is what makes warm-state- and load-aware choices safe.
type Decision struct {
	Plan Plan
	// Workers is the within-instance worker count for the master-problem
	// shards / best-response candidate scans (1 = exact serial path).
	Workers int
	// Incremental selects the evaluation engine for the solve.
	Incremental game.Toggle
	// PredictedNs is the modeled cost of the chosen plan.
	PredictedNs float64
}

// Planner picks a per-instance plan from a cost profile.
type Planner struct {
	// Forced bypasses the cost model when not PlanAuto.
	Forced Plan
	// Prof is the calibrated cost profile (nil = DefaultProfile, the
	// no-calibration fallback).
	Prof *CostProfile
}

func (pl *Planner) profile() *CostProfile {
	if pl == nil || pl.Prof == nil {
		return DefaultProfile()
	}
	return pl.Prof
}

// planOrder fixes the deterministic tie-break: earlier wins on equal
// predicted cost.
var planOrder = [...]Plan{PlanPruned, PlanTraversal, PlanDBR}

// Decide resolves the plan, worker count and evaluation engine for one
// instance. spare is the number of idle pool workers the instance may
// additionally occupy for within-instance sharding (0 on a saturated pool,
// which is the norm mid-batch); it influences Workers only, never the
// plan, so decisions stay deterministic per instance.
func (pl *Planner) Decide(st Stats, spare int) Decision {
	prof := pl.profile()
	dec := Decision{Plan: pl.Forced, Workers: 1, Incremental: game.ToggleDefault}
	if dec.Plan == PlanAuto {
		best := math.Inf(1)
		for _, p := range planOrder {
			if c := prof.Predict(p, st); c < best {
				best, dec.Plan = c, p
			}
		}
	}
	dec.PredictedNs = prof.Predict(dec.Plan, st)
	// Within-instance sharding pays only when the instance is large and the
	// pool has idle workers (tail of a batch, or a huge lone instance).
	// Tiny instances always take the exact serial path: goroutine fan-out
	// costs more than the whole solve at N ≤ 4.
	if st.N > 4 && spare > 0 && st.Grid >= 16384 {
		dec.Workers = spare + 1
		if dec.Workers > st.MaxLevels {
			dec.Workers = st.MaxLevels
		}
	}
	// Warm scratch exists only for the incremental engine's caches, so a
	// warm instance pins the engine on rather than following the process
	// default. Byte-identical either way.
	if st.WarmScratch {
		dec.Incremental = game.ToggleOn
	}
	return dec
}
