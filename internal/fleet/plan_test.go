package fleet

import (
	"context"
	"math"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestParsePlanRoundTrip: every plan parses back from its String form.
func TestParsePlanRoundTrip(t *testing.T) {
	for _, p := range []Plan{PlanAuto, PlanDBR, PlanPruned, PlanTraversal} {
		got, err := ParsePlan(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePlan(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePlan("greedy"); err == nil {
		t.Error("accepted unknown plan name")
	}
}

// TestDecideSerialTinyInstances: instances with N ≤ 4 always take the
// exact serial path (Workers 1), even with idle pool workers and a large
// grid — the fan-out overhead exceeds the whole solve.
func TestDecideSerialTinyInstances(t *testing.T) {
	var pl Planner
	for n := 1; n <= 4; n++ {
		st := Stats{N: n, MaxLevels: 64, MeanLevels: 64, Grid: 1 << 24, Epsilon: 1e-6}
		if dec := pl.Decide(st, 8); dec.Workers != 1 {
			t.Errorf("N=%d: Workers = %d, want the serial path", n, dec.Workers)
		}
	}
	// Large instances with idle workers may shard.
	st := Stats{N: 12, MaxLevels: 8, MeanLevels: 8, Grid: math.Pow(8, 12), Epsilon: 1e-6}
	if dec := pl.Decide(st, 3); dec.Workers != 4 {
		t.Errorf("large instance with 3 spare workers: Workers = %d, want 4", dec.Workers)
	}
	// A saturated pool (no spare workers) never shards.
	if dec := pl.Decide(st, 0); dec.Workers != 1 {
		t.Errorf("saturated pool: Workers = %d, want 1", dec.Workers)
	}
}

// TestDecideDeterministicPlan: the chosen plan is a pure function of the
// instance statistics — spare workers and warm-state availability may only
// move the byte-identical knobs.
func TestDecideDeterministicPlan(t *testing.T) {
	var pl Planner
	base := Stats{N: 8, MaxLevels: 3, MeanLevels: 3, Grid: 6561, Epsilon: 1e-6}
	ref := pl.Decide(base, 0)
	for _, spare := range []int{0, 1, 4, 16} {
		for _, warm := range []bool{false, true} {
			st := base
			st.WarmScratch = warm
			if dec := pl.Decide(st, spare); dec.Plan != ref.Plan {
				t.Fatalf("plan flipped to %s under spare=%d warm=%v", dec.Plan, spare, warm)
			}
		}
	}
}

// TestDecideDefaultProfileFallback: with no calibration profile at all the
// planner still routes the measured solver crossovers sensibly — tiny
// grids to a CGBD master, big-N instances to DBR, and never traversal on
// an intractable grid.
func TestDecideDefaultProfileFallback(t *testing.T) {
	var pl Planner // nil profile → DefaultProfile
	small := pl.Decide(Stats{N: 4, MaxLevels: 3, MeanLevels: 3, Grid: 81, Epsilon: 1e-6}, 0)
	if small.Plan == PlanDBR {
		t.Errorf("N=4 m=3 routed to %s; a CGBD master is an order of magnitude cheaper there", small.Plan)
	}
	big := pl.Decide(Stats{N: 16, MaxLevels: 3, MeanLevels: 3, Grid: math.Pow(3, 16), Epsilon: 1e-6}, 0)
	if big.Plan != PlanDBR {
		t.Errorf("N=16 m=3 routed to %s, want dbr (grid 3^16 is intractable for traversal, slow for pruned)", big.Plan)
	}
	huge := pl.Decide(Stats{N: 40, MaxLevels: 10, MeanLevels: 10, Grid: math.Pow(10, 40), Epsilon: 1e-6}, 0)
	if huge.Plan == PlanTraversal {
		t.Error("traversal chosen on a 10^40 grid")
	}
	if !math.IsInf(DefaultProfile().Predict(PlanTraversal, Stats{Grid: 1e12}), 1) {
		t.Error("traversal prediction finite beyond the hard grid cap")
	}
}

// TestProfileSaveLoad: JSON round-trip, version guard, and degenerate
// coefficient rejection.
func TestProfileSaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "profile.json")
	prof := DefaultProfile()
	prof.DBRUnit = 1234.5
	if err := prof.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *prof {
		t.Fatalf("round-trip mismatch: %+v vs %+v", got, prof)
	}

	stale := DefaultProfile()
	stale.Version = profileVersion + 1
	stalePath := filepath.Join(dir, "stale.json")
	if err := stale.Save(stalePath); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadProfile(stalePath); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("stale profile version accepted: %v", err)
	}

	broken := DefaultProfile()
	broken.PrunedUnit = 0
	brokenPath := filepath.Join(dir, "broken.json")
	if err := broken.Save(brokenPath); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadProfile(brokenPath); err == nil {
		t.Error("zero coefficient accepted")
	}

	if _, err := LoadProfile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

// TestCalibrate: the self-calibration micro-bench produces a valid profile
// with every coefficient inside the clamp band around the defaults.
func TestCalibrate(t *testing.T) {
	prof, err := Calibrate(CalibrateOptions{Seeds: []int64{1}, Ns: []int{4, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if err := prof.valid(); err != nil {
		t.Fatal(err)
	}
	def := DefaultProfile()
	for _, pair := range [][2]float64{
		{prof.DBRUnit, def.DBRUnit},
		{prof.PrunedUnit, def.PrunedUnit},
		{prof.TraversalUnit, def.TraversalUnit},
	} {
		if pair[0] > pair[1]*unitClamp || pair[0] < pair[1]/unitClamp {
			t.Errorf("calibrated unit %v outside the clamp band around %v", pair[0], pair[1])
		}
	}
	if prof.CalibratedNs <= 0 {
		t.Error("calibration wall time not recorded")
	}
}

// TestPlannerRegret: on the calibration corpus, auto planning is never
// slower than the best fixed plan by more than a bounded factor. The
// acceptance bound is 1.10 on the reference host; the test allows 1.5×
// plus an absolute slack so scheduler noise on loaded CI machines cannot
// flake it — auto picks the per-instance winner, which on this corpus
// beats every fixed plan outright.
func TestPlannerRegret(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock regret measurement")
	}
	cfgs := mixedCorpus(t, 2)
	run := func(plan Plan) time.Duration {
		best := time.Duration(math.MaxInt64)
		for rep := 0; rep < 3; rep++ {
			eng := New(Options{Plan: plan, Workers: 1})
			start := time.Now()
			for _, r := range eng.Solve(context.Background(), cfgs) {
				if r.Err != nil {
					t.Fatal(r.Err)
				}
			}
			if dt := time.Since(start); dt < best {
				best = dt
			}
		}
		return best
	}
	auto := run(PlanAuto)
	fixedBest := time.Duration(math.MaxInt64)
	for _, plan := range []Plan{PlanDBR, PlanPruned} { // traversal diverges on N=10
		if dt := run(plan); dt < fixedBest {
			fixedBest = dt
		}
	}
	const slack = 5 * time.Millisecond
	if auto > fixedBest+fixedBest/2+slack {
		t.Errorf("auto %v vs best fixed %v: regret above the 1.5× + %v bound", auto, fixedBest, slack)
	}
}
