package fleet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"time"

	"tradefl/internal/accuracy"
	"tradefl/internal/dbr"
	"tradefl/internal/game"
	"tradefl/internal/gbd"
	"tradefl/internal/obs"
	"tradefl/internal/parallel"
	"tradefl/internal/verify"
)

// Options configures a fleet Engine.
type Options struct {
	// Plan forces one solver for every instance; PlanAuto (the zero value)
	// lets the cost model pick per instance.
	Plan Plan
	// Workers bounds the goroutines solving instances concurrently
	// (0 = process default). Instance results are byte-identical for every
	// worker count; only throughput changes.
	Workers int
	// GBD carries the base CGBD options. Master and Workers are overridden
	// per instance by the planner; Epsilon and MaxIter apply to every CGBD
	// solve and key the warm result cache.
	GBD gbd.Options
	// DBR carries the base Algorithm 2 options (Workers overridden per
	// instance by the planner).
	DBR dbr.Options
	// Profile is the calibrated cost profile (nil = built-in defaults).
	Profile *CostProfile
	// WarmCap bounds the retained warm entries, one per distinct config
	// pointer (0 = 4096; negative disables warm state entirely).
	WarmCap int
}

// Result is the outcome of one instance solve. Profiles and solver results
// may be shared with the engine's warm cache across repeated solves of an
// unchanged instance — treat them as read-only.
type Result struct {
	// Plan is the concrete plan the instance was solved with.
	Plan Plan
	// Decision is the full planner verdict.
	Decision Decision
	// Warm reports that the result was served from the warm result cache
	// (byte-identical to re-solving, by the determinism contract).
	Warm bool
	// Profile is the equilibrium profile.
	Profile game.Profile
	// Potential is U(Profile).
	Potential float64
	// GBD / DBR carry the underlying solver result (exactly one non-nil on
	// success).
	GBD *gbd.Result
	DBR *dbr.Result
	// Err is the per-instance failure, or the batch context error for
	// instances skipped after cancellation.
	Err error
}

// warmEntry is the per-config warm state: the last result (memo) and the
// CGBD solver scratch. Guarded by Engine.mu; the gbd scratch is checked
// out (slot set to nil) while a solve uses it, so concurrent solves of the
// same pointer fall back to fresh scratch instead of racing.
type warmEntry struct {
	sig  uint64
	acc  accuracy.Model
	plan Plan

	profile   game.Profile
	potential float64
	gbdRes    *gbd.Result
	dbrRes    *dbr.Result

	gbd *gbd.Warm
}

// Engine schedules instance solves over a shared worker pool, consulting
// the planner per instance and retaining warm solver state per config
// pointer across batches and campaign epochs.
type Engine struct {
	opts    Options
	planner Planner

	mu    sync.Mutex
	warm  map[*game.Config]*warmEntry
	order []*game.Config // FIFO eviction order of warm entries
}

// DefaultWarmCap bounds retained warm entries when Options.WarmCap is 0.
const DefaultWarmCap = 4096

// New builds a fleet engine.
func New(opts Options) *Engine {
	if opts.WarmCap == 0 {
		opts.WarmCap = DefaultWarmCap
	}
	return &Engine{
		opts:    opts,
		planner: Planner{Forced: opts.Plan, Prof: opts.Profile},
		warm:    make(map[*game.Config]*warmEntry),
	}
}

// Planner exposes the engine's planner (for reporting predicted costs).
func (e *Engine) Planner() *Planner { return &e.planner }

// Solve solves every instance of the batch and returns the per-instance
// results in input order. Each result is byte-identical to solving that
// instance alone with the same plan; per-instance failures are recorded in
// Result.Err without aborting the batch. Cancelling ctx stops scheduling
// new instances (skipped instances carry ctx's error).
func (e *Engine) Solve(ctx context.Context, cfgs []*game.Config) []Result {
	n := len(cfgs)
	res := make([]Result, n)
	if n == 0 {
		return res
	}
	workers := parallel.Resolve(e.opts.Workers)
	// Idle pool workers an instance may additionally occupy for
	// within-instance sharding: none while the batch itself can keep the
	// pool busy. Influences only byte-identical knobs.
	spare := workers - n
	if spare < 0 {
		spare = 0
	}
	mBatches.Inc()
	mInstances.Add(int64(n))
	mQueue.Add(float64(n))
	start := time.Now()
	ctx, batchSpan := obs.Span(ctx, "fleet.batch")
	order := e.schedule(cfgs)
	err := parallel.ForCtxLabeled(ctx, "fleet.batch", workers, n, func(i int) error {
		idx := order[i]
		res[idx] = e.solveOne(ctx, cfgs[idx], spare)
		mQueue.Add(-1)
		return nil
	})
	if err != nil {
		for i := range res {
			if res[i].Plan == PlanAuto && res[i].Err == nil { // never scheduled
				res[i].Err = err
				mQueue.Add(-1)
			}
		}
	}
	batchSpan.End()
	dt := time.Since(start).Seconds()
	mBatchSec.Observe(dt)
	if dt > 0 {
		mRate.Set(float64(n) / dt)
	}
	if obs.TelemetryOpen() {
		failed := 0
		for i := range res {
			if res[i].Err != nil {
				failed++
			}
		}
		rec := batchTelemetry{Kind: "fleet.batch", Instances: n, Failed: failed, Seconds: dt}
		if dt > 0 {
			rec.SolvesPerSec = float64(n) / dt
		}
		if tc, ok := batchSpan.TraceContext(); ok {
			rec.TraceID = tc.TraceID
		}
		obs.EmitTelemetry(rec)
	}
	return res
}

// batchTelemetry is the per-batch aggregate emitted to -telemetry-out.
type batchTelemetry struct {
	Kind         string  `json:"kind"`
	TraceID      string  `json:"traceId,omitempty"`
	Instances    int     `json:"instances"`
	Failed       int     `json:"failed"`
	Seconds      float64 `json:"seconds"`
	SolvesPerSec float64 `json:"solvesPerSec,omitempty"`
}

// schedule orders the batch by (plan, shape) so consecutive solves share
// solver code paths, pooled engines and arena size classes — a mixed batch
// in input order thrashes them. Results are position-independent (the
// determinism contract), so solve order is free throughput; the ordering
// itself is deterministic (stats plus index tie-break, never load or cache
// state).
func (e *Engine) schedule(cfgs []*game.Config) []int {
	order := make([]int, len(cfgs))
	keys := make([]Stats, len(cfgs))
	plans := make([]Plan, len(cfgs))
	for i, cfg := range cfgs {
		order[i] = i
		keys[i] = StatsOf(cfg, e.opts.GBD.Epsilon)
		plans[i] = e.planner.Decide(keys[i], 0).Plan
	}
	sort.SliceStable(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if plans[ia] != plans[ib] {
			return plans[ia] < plans[ib]
		}
		if keys[ia].N != keys[ib].N {
			return keys[ia].N < keys[ib].N
		}
		if keys[ia].Grid != keys[ib].Grid {
			return keys[ia].Grid < keys[ib].Grid
		}
		return ia < ib
	})
	return order
}

// SolveOne solves a single instance through the fleet path (planner, warm
// state, metrics). A lone instance may use the whole pool for
// within-instance sharding.
func (e *Engine) SolveOne(cfg *game.Config) Result {
	return e.SolveOneCtx(context.Background(), cfg)
}

// SolveOneCtx is SolveOne under a caller context: the instance's solver
// span joins the trace carried by ctx (the campaign loop threads its run
// trace through here), with no effect on the computed result.
func (e *Engine) SolveOneCtx(ctx context.Context, cfg *game.Config) Result {
	mBatches.Inc()
	mInstances.Inc()
	return e.solveOne(ctx, cfg, parallel.Resolve(e.opts.Workers)-1)
}

func (e *Engine) solveOne(ctx context.Context, cfg *game.Config, spare int) Result {
	start := time.Now()
	defer func() { mSolveSec.Observe(time.Since(start).Seconds()) }()

	sig := cfg.Signature()
	st := StatsOf(cfg, e.opts.GBD.Epsilon)

	// Plan first: the choice depends only on (stats, profile), so the memo
	// lookup below can key on the plan without the plan depending on the
	// memo — the loop that would break batch/one-at-a-time equivalence.
	planOnly := e.planner.Decide(st, spare)

	ent, w, memo := e.checkout(cfg, sig, planOnly.Plan)
	if memo != nil {
		memo.Decision.PredictedNs = planOnly.PredictedNs
		return *memo
	}
	mWarmMisses.Inc()
	st.WarmScratch = w != nil && w.Fits(cfg)
	dec := e.planner.Decide(st, spare)
	planCounter(dec.Plan).Inc()

	r := Result{Plan: dec.Plan, Decision: dec}
	switch dec.Plan {
	case PlanDBR:
		dopts := e.opts.DBR
		dopts.Workers = dec.Workers
		if dopts.Incremental == game.ToggleDefault {
			dopts.Incremental = dec.Incremental
		}
		dres, err := dbr.SolveCtx(ctx, cfg, nil, dopts)
		if err != nil {
			r.Err = err
			break
		}
		r.DBR, r.Profile, r.Potential = dres, dres.Profile, cfg.Potential(dres.Profile)
	default:
		gopts := e.gbdOpts(dec)
		gres, w2, err := gbd.SolveWarmCtx(ctx, cfg, gopts, w)
		w = w2
		if err != nil {
			r.Err = err
			break
		}
		r.GBD, r.Profile, r.Potential = gres, gres.Profile, gres.Potential
	}
	if r.Err != nil {
		mErrors.Inc()
	}
	e.checkin(cfg, ent, sig, w, &r)
	return r
}

// gbdOpts maps a planner decision onto the engine's base CGBD options.
func (e *Engine) gbdOpts(dec Decision) gbd.Options {
	gopts := e.opts.GBD
	gopts.Workers = dec.Workers
	if dec.Plan == PlanTraversal {
		gopts.Master = gbd.MasterTraversal
	} else {
		gopts.Master = gbd.MasterPruned
	}
	if gopts.Incremental == game.ToggleDefault {
		gopts.Incremental = dec.Incremental
	}
	return gopts
}

// checkout finds (or creates) the warm entry of cfg and either returns the
// memoized result for (sig, plan) — the warm hit — or transfers ownership
// of the entry's CGBD scratch to the caller.
func (e *Engine) checkout(cfg *game.Config, sig uint64, plan Plan) (*warmEntry, *gbd.Warm, *Result) {
	if e.opts.WarmCap < 0 {
		return nil, nil, nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	ent := e.warm[cfg]
	if ent == nil {
		ent = &warmEntry{}
		e.warm[cfg] = ent
		e.order = append(e.order, cfg)
		if len(e.order) > e.opts.WarmCap {
			evict := e.order[0]
			e.order = e.order[1:]
			delete(e.warm, evict)
		}
	}
	if ent.profile != nil && ent.sig == sig && ent.plan == plan && game.SameModel(ent.acc, cfg.Accuracy) {
		mWarmHits.Inc()
		res := &Result{
			Plan:      plan,
			Decision:  Decision{Plan: plan, Workers: 1, Incremental: game.ToggleDefault},
			Warm:      true,
			Profile:   ent.profile,
			Potential: ent.potential,
			GBD:       ent.gbdRes,
			DBR:       ent.dbrRes,
		}
		return ent, nil, res
	}
	w := ent.gbd
	ent.gbd = nil
	return ent, w, nil
}

// checkin returns the CGBD scratch to the entry and, on success, installs
// the result memo. The entry may have been evicted mid-solve, in which
// case the state is simply dropped.
func (e *Engine) checkin(cfg *game.Config, ent *warmEntry, sig uint64, w *gbd.Warm, r *Result) {
	if ent == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.warm[cfg] != ent {
		return
	}
	if ent.gbd == nil {
		ent.gbd = w
	}
	if r.Err != nil || r.Profile == nil {
		return
	}
	ent.sig, ent.acc, ent.plan = sig, cfg.Accuracy, r.Plan
	ent.profile, ent.potential = r.Profile, r.Potential
	ent.gbdRes, ent.dbrRes = r.GBD, r.DBR
}

// ErrAuditMismatch reports a batch output that differed from its cold
// re-solve — a violated determinism contract.
var ErrAuditMismatch = errors.New("fleet: audit: batch result differs from cold re-solve")

// Audit re-solves a deterministic sample of the batch cold (fresh solver,
// no warm state, same plan) and compares profiles bitwise; with the verify
// subsystem enabled it additionally runs the solver invariant checks on
// the sampled results. fraction ∈ (0, 1] bounds the sampled share (at
// least one instance when the batch is non-empty). It returns the number
// of audited instances and the first mismatch.
func (e *Engine) Audit(cfgs []*game.Config, results []Result, fraction float64, seed int64) (int, error) {
	if len(cfgs) != len(results) {
		return 0, fmt.Errorf("fleet: audit: %d configs vs %d results", len(cfgs), len(results))
	}
	if fraction <= 0 || len(cfgs) == 0 {
		return 0, nil
	}
	if fraction > 1 {
		fraction = 1
	}
	rng := rand.New(rand.NewSource(seed))
	audited := 0
	for i := range cfgs {
		if results[i].Err != nil || results[i].Profile == nil {
			continue
		}
		if rng.Float64() >= fraction && !(audited == 0 && i == len(cfgs)-1) {
			continue
		}
		audited++
		mAudits.Inc()
		if err := e.auditOne(cfgs[i], &results[i]); err != nil {
			return audited, fmt.Errorf("instance %d (plan %s): %w", i, results[i].Plan, err)
		}
	}
	return audited, nil
}

func (e *Engine) auditOne(cfg *game.Config, r *Result) error {
	var (
		cold game.Profile
		err  error
	)
	switch r.Plan {
	case PlanDBR:
		var dres *dbr.Result
		dres, err = dbr.Solve(cfg, nil, e.opts.DBR)
		if err == nil {
			cold = dres.Profile
			if a := verify.Global(); a != nil {
				a.CheckDBR(cfg, dres, "fleet.audit")
			}
		}
	default:
		var gres *gbd.Result
		gopts := e.gbdOpts(Decision{Plan: r.Plan, Workers: 1})
		gres, err = gbd.Solve(cfg, gopts)
		if err == nil {
			cold = gres.Profile
			if a := verify.Global(); a != nil {
				eps := e.opts.GBD.Epsilon
				if eps == 0 {
					eps = 1e-6
				}
				a.CheckGBD(cfg, gres, eps, "fleet.audit")
			}
		}
	}
	if err != nil {
		return fmt.Errorf("fleet: audit: cold re-solve failed: %w", err)
	}
	if !reflect.DeepEqual(r.Profile, cold) {
		return fmt.Errorf("%w\nbatch: %+v\ncold:  %+v", ErrAuditMismatch, r.Profile, cold)
	}
	return nil
}
