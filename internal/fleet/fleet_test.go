package fleet

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"tradefl/internal/dbr"
	"tradefl/internal/game"
	"tradefl/internal/gbd"
)

func fleetConfig(t testing.TB, seed int64, n int) *game.Config {
	t.Helper()
	cfg, err := game.DefaultConfig(game.GenOptions{Seed: seed, N: n, CPUSteps: 3, NoOrgName: true})
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// mixedCorpus builds a small batch spanning the planner's crossover region.
func mixedCorpus(t testing.TB, copies int) []*game.Config {
	t.Helper()
	sizes := []int{4, 6, 8, 10}
	var cfgs []*game.Config
	for c := 0; c < copies; c++ {
		for i, n := range sizes {
			cfgs = append(cfgs, fleetConfig(t, int64(10*c+i+1), n))
		}
	}
	return cfgs
}

// TestBatchMatchesOneAtATime is the core determinism contract: a batched
// solve must be byte-identical to solving each instance alone through a
// fresh engine, and to calling the underlying solver directly with the
// plan the engine chose.
func TestBatchMatchesOneAtATime(t *testing.T) {
	cfgs := mixedCorpus(t, 2)
	eng := New(Options{Workers: 4})
	batch := eng.Solve(context.Background(), cfgs)
	for i, r := range batch {
		if r.Err != nil {
			t.Fatalf("instance %d: %v", i, r.Err)
		}
		lone := New(Options{Workers: 1}).SolveOne(cfgs[i])
		if lone.Err != nil {
			t.Fatalf("instance %d lone: %v", i, lone.Err)
		}
		if lone.Plan != r.Plan {
			t.Fatalf("instance %d: batch plan %s, lone plan %s", i, r.Plan, lone.Plan)
		}
		if !reflect.DeepEqual(r.Profile, lone.Profile) {
			t.Fatalf("instance %d: batch profile differs from one-at-a-time", i)
		}
		// Direct solver, same plan.
		var direct game.Profile
		switch r.Plan {
		case PlanDBR:
			dres, err := dbr.Solve(cfgs[i], nil, dbr.Options{})
			if err != nil {
				t.Fatal(err)
			}
			direct = dres.Profile
		default:
			gres, err := gbd.Solve(cfgs[i], eng.gbdOpts(Decision{Plan: r.Plan, Workers: 1}))
			if err != nil {
				t.Fatal(err)
			}
			direct = gres.Profile
		}
		if !reflect.DeepEqual(r.Profile, direct) {
			t.Fatalf("instance %d (plan %s): batch profile differs from direct solver", i, r.Plan)
		}
	}
}

// TestFixedPlansMatchDirect checks every forced plan against the direct
// solver call it is documented to be equivalent to.
func TestFixedPlansMatchDirect(t *testing.T) {
	cfgs := []*game.Config{fleetConfig(t, 3, 4), fleetConfig(t, 5, 6)}
	for _, plan := range []Plan{PlanDBR, PlanPruned, PlanTraversal} {
		eng := New(Options{Plan: plan, Workers: 2})
		res := eng.Solve(context.Background(), cfgs)
		for i, r := range res {
			if r.Err != nil {
				t.Fatalf("%s instance %d: %v", plan, i, r.Err)
			}
			if r.Plan != plan {
				t.Fatalf("%s instance %d: solved with %s", plan, i, r.Plan)
			}
			var direct game.Profile
			if plan == PlanDBR {
				dres, err := dbr.Solve(cfgs[i], nil, dbr.Options{})
				if err != nil {
					t.Fatal(err)
				}
				direct = dres.Profile
			} else {
				gres, err := gbd.Solve(cfgs[i], eng.gbdOpts(Decision{Plan: plan, Workers: 1}))
				if err != nil {
					t.Fatal(err)
				}
				direct = gres.Profile
			}
			if !reflect.DeepEqual(r.Profile, direct) {
				t.Fatalf("%s instance %d: profile differs from direct solver", plan, i)
			}
		}
	}
}

// TestWarmResultReuse: re-solving an unchanged instance through the same
// engine is served from the warm result cache, byte-identically.
func TestWarmResultReuse(t *testing.T) {
	cfg := fleetConfig(t, 7, 6)
	eng := New(Options{Workers: 1})
	first := eng.SolveOne(cfg)
	if first.Err != nil {
		t.Fatal(first.Err)
	}
	if first.Warm {
		t.Fatal("first solve cannot be warm")
	}
	second := eng.SolveOne(cfg)
	if second.Err != nil {
		t.Fatal(second.Err)
	}
	if !second.Warm {
		t.Fatal("unchanged re-solve did not hit the warm result cache")
	}
	if !reflect.DeepEqual(first.Profile, second.Profile) {
		t.Fatal("warm result differs from first solve")
	}
	// In-place drift (campaign pattern) must invalidate the memo and still
	// match a cold solve bit for bit.
	for i := range cfg.Orgs {
		cfg.Orgs[i].Profitability *= 1.3
	}
	cfg.NormalizeRho(game.DefaultZMargin)
	third := eng.SolveOne(cfg)
	if third.Err != nil {
		t.Fatal(third.Err)
	}
	if third.Warm {
		t.Fatal("drifted instance served from stale warm result")
	}
	cold := New(Options{Workers: 1}).SolveOne(cfg)
	if !reflect.DeepEqual(third.Profile, cold.Profile) {
		t.Fatal("post-drift warm-scratch solve differs from cold solve")
	}
}

// TestBatchDuplicatePointers: the same instance appearing many times in
// one concurrent batch must produce identical results at every position
// (warm ownership transfer, no races — run under -race in CI).
func TestBatchDuplicatePointers(t *testing.T) {
	cfg := fleetConfig(t, 11, 6)
	cfgs := make([]*game.Config, 16)
	for i := range cfgs {
		cfgs[i] = cfg
	}
	res := New(Options{Workers: 8}).Solve(context.Background(), cfgs)
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("instance %d: %v", i, r.Err)
		}
		if r.Plan != res[0].Plan {
			t.Fatalf("instance %d: plan %s differs from position 0 (%s)", i, r.Plan, res[0].Plan)
		}
		if !reflect.DeepEqual(r.Profile, res[0].Profile) {
			t.Fatalf("instance %d: duplicate instance produced a different profile", i)
		}
	}
}

// TestContextCancel: a cancelled batch marks unscheduled instances with
// the context error instead of returning zero-valued results.
func TestContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := New(Options{Workers: 2}).Solve(ctx, mixedCorpus(t, 1))
	for i, r := range res {
		if r.Err == nil {
			t.Fatalf("instance %d: no error after pre-cancelled batch", i)
		}
	}
}

// TestPerInstanceError: one invalid instance fails alone; the rest of the
// batch still solves.
func TestPerInstanceError(t *testing.T) {
	cfgs := []*game.Config{fleetConfig(t, 1, 4), {}, fleetConfig(t, 2, 6)}
	res := New(Options{Workers: 1}).Solve(context.Background(), cfgs)
	if res[1].Err == nil {
		t.Fatal("empty config solved without error")
	}
	for _, i := range []int{0, 2} {
		if res[i].Err != nil {
			t.Fatalf("valid instance %d poisoned by the failing one: %v", i, res[i].Err)
		}
		if res[i].Profile == nil {
			t.Fatalf("valid instance %d has no profile", i)
		}
	}
}

// TestAudit: a clean batch passes the full audit; a tampered result is
// caught.
func TestAudit(t *testing.T) {
	cfgs := mixedCorpus(t, 1)
	eng := New(Options{Workers: 2})
	res := eng.Solve(context.Background(), cfgs)
	audited, err := eng.Audit(cfgs, res, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	if audited != len(cfgs) {
		t.Fatalf("audited %d of %d at fraction 1", audited, len(cfgs))
	}
	// Tamper with one output: the audit must flag it.
	tampered := append(game.Profile(nil), res[0].Profile...)
	tampered[0].D *= 1.0000001
	res[0].Profile = tampered
	if _, err := eng.Audit(cfgs, res, 1, 42); !errors.Is(err, ErrAuditMismatch) {
		t.Fatalf("tampered batch passed the audit: %v", err)
	}
}

// TestAuditSampling: small fractions audit at least one instance and stay
// deterministic in the seed.
func TestAuditSampling(t *testing.T) {
	cfgs := mixedCorpus(t, 1)
	eng := New(Options{Workers: 1})
	res := eng.Solve(context.Background(), cfgs)
	a1, err := eng.Audit(cfgs, res, 0.25, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a1 < 1 {
		t.Fatal("fraction 0.25 audited nothing")
	}
	a2, err := eng.Audit(cfgs, res, 0.25, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatalf("same seed audited %d then %d instances", a1, a2)
	}
	if n, err := eng.Audit(cfgs, res, 0, 7); n != 0 || err != nil {
		t.Fatalf("fraction 0 must audit nothing, got %d, %v", n, err)
	}
}

// TestWarmEviction: the warm map stays bounded by WarmCap.
func TestWarmEviction(t *testing.T) {
	eng := New(Options{Workers: 1, WarmCap: 2})
	for i := 0; i < 5; i++ {
		r := eng.SolveOne(fleetConfig(t, int64(i+1), 4))
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	eng.mu.Lock()
	defer eng.mu.Unlock()
	if len(eng.warm) > 2 || len(eng.order) > 2 {
		t.Fatalf("warm cache grew past WarmCap: %d entries, %d order", len(eng.warm), len(eng.order))
	}
}

// TestWarmDisabled: negative WarmCap keeps the engine stateless.
func TestWarmDisabled(t *testing.T) {
	cfg := fleetConfig(t, 3, 4)
	eng := New(Options{Workers: 1, WarmCap: -1})
	a, b := eng.SolveOne(cfg), eng.SolveOne(cfg)
	if a.Err != nil || b.Err != nil {
		t.Fatal(a.Err, b.Err)
	}
	if b.Warm {
		t.Fatal("warm hit with warm state disabled")
	}
	if !reflect.DeepEqual(a.Profile, b.Profile) {
		t.Fatal("stateless re-solve differs")
	}
	if len(eng.warm) != 0 {
		t.Fatal("warm entries retained with WarmCap < 0")
	}
}
