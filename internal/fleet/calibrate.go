package fleet

import (
	"fmt"
	"math"
	"time"

	"tradefl/internal/dbr"
	"tradefl/internal/game"
	"tradefl/internal/gbd"
	"tradefl/internal/obs"
)

// CalibrateOptions bounds the self-calibration micro-benchmark.
type CalibrateOptions struct {
	// Seeds are the instance seeds per size (default 1, 2).
	Seeds []int64
	// Ns are the organization counts of the calibration corpus (default
	// 4, 6, 8 — small enough that even the exhaustive traversal master
	// stays in the microsecond range).
	Ns []int
	// CPUSteps is the per-organization grid width (default 3).
	CPUSteps int
}

func (o CalibrateOptions) withDefaults() CalibrateOptions {
	if len(o.Seeds) == 0 {
		o.Seeds = []int64{1, 2}
	}
	if len(o.Ns) == 0 {
		// Spans the pruned/DBR crossover region; the traversal fit only
		// uses the instances below calTraversalGrid.
		o.Ns = []int{4, 6, 8, 10, 12}
	}
	if o.CPUSteps == 0 {
		o.CPUSteps = 3
	}
	return o
}

// calTraversalGrid caps the grid size of instances used to fit the
// traversal coefficient: beyond it one exhaustive solve costs
// milliseconds, turning the micro-benchmark macro for a plan the planner
// excludes on large grids anyway.
const calTraversalGrid = 1e4

// unitClamp bounds how far calibration may move a coefficient from the
// built-in default, so one noisy measurement (GC pause, CPU throttle)
// cannot produce a profile that misroutes whole batches.
const unitClamp = 16

// Calibrate runs a small solver micro-benchmark and fits the cost-model
// scale coefficients to this host. The per-solve timings are read from the
// recorded obs wall-time histograms (tradefl_gbd_solve_seconds,
// tradefl_dbr_solve_seconds) — the same per-phase telemetry a long-running
// process accumulates — so the calibration path and production telemetry
// cannot drift apart. Each instance is solved twice and only the second,
// warmed solve is measured. The fit keeps the built-in base terms and
// refits the unit coefficients by least squares through the origin over
// the corpus, clamped to a factor of unitClamp around the defaults.
//
// The obs registry is process-global: calibrate on a quiet process, or the
// histogram deltas include concurrent solves.
func Calibrate(opts CalibrateOptions) (*CostProfile, error) {
	opts = opts.withDefaults()
	prof := DefaultProfile()
	start := time.Now()

	corpus := make([]*game.Config, 0, len(opts.Ns)*len(opts.Seeds))
	for _, n := range opts.Ns {
		for _, seed := range opts.Seeds {
			cfg, err := game.DefaultConfig(game.GenOptions{
				N: n, Seed: seed, CPUSteps: opts.CPUSteps, NoOrgName: true,
			})
			if err != nil {
				return nil, fmt.Errorf("fleet: calibrate: corpus N=%d seed=%d: %w", n, seed, err)
			}
			corpus = append(corpus, cfg)
		}
	}

	// Least squares through the origin on (work factor, measured − base):
	// unit = Σ f·t / Σ f². Large instances carry more weight, which is
	// exactly where a wrong crossover costs real wall time; a geometric
	// mean would let the microsecond-scale instances drown them out.
	fit := func(plan Plan) (float64, error) {
		num, den := 0.0, 0.0
		for _, cfg := range corpus {
			st := StatsOf(cfg, 0)
			factor := unitFactor(plan, st)
			if factor <= 0 {
				continue
			}
			if plan == PlanTraversal && st.Grid > calTraversalGrid {
				continue
			}
			ns, err := measure(plan, cfg)
			if err != nil {
				return 0, err
			}
			if t := ns - baseOf(prof, plan); t > 0 {
				num += factor * t
				den += factor * factor
			}
		}
		if den == 0 {
			return 0, fmt.Errorf("fleet: calibrate: no usable %s timing samples", plan)
		}
		return num / den, nil
	}

	for _, plan := range []Plan{PlanDBR, PlanPruned, PlanTraversal} {
		unit, err := fit(plan)
		if err != nil {
			return nil, err
		}
		def := unitOf(DefaultProfile(), plan)
		unit = math.Min(def*unitClamp, math.Max(def/unitClamp, unit))
		setUnit(prof, plan, unit)
	}
	prof.CalibratedNs = float64(time.Since(start).Nanoseconds())
	mCalibrateNs.Set(prof.CalibratedNs)
	if err := prof.valid(); err != nil {
		return nil, err
	}
	return prof, nil
}

// unitFactor is the structural term the unit coefficient multiplies in the
// cost model — the per-plan "work size" of the instance.
func unitFactor(p Plan, st Stats) float64 {
	switch p {
	case PlanDBR:
		return math.Pow(float64(st.N), 1.5) * st.MeanLevels
	case PlanPruned:
		return math.Pow(st.Grid, 0.4) * epsFactor(st.Epsilon)
	case PlanTraversal:
		if st.Grid > maxTraversalGrid {
			return 0
		}
		return st.Grid * epsFactor(st.Epsilon)
	}
	return 0
}

func baseOf(c *CostProfile, p Plan) float64 {
	switch p {
	case PlanDBR:
		return c.DBRBase
	case PlanPruned:
		return c.PrunedBase
	default:
		return c.TraversalBase
	}
}

func unitOf(c *CostProfile, p Plan) float64 {
	switch p {
	case PlanDBR:
		return c.DBRUnit
	case PlanPruned:
		return c.PrunedUnit
	default:
		return c.TraversalUnit
	}
}

func setUnit(c *CostProfile, p Plan, v float64) {
	switch p {
	case PlanDBR:
		c.DBRUnit = v
	case PlanPruned:
		c.PrunedUnit = v
	default:
		c.TraversalUnit = v
	}
}

// measure solves cfg twice with the given plan (serial, incremental
// default) and returns the second solve's wall time in nanoseconds, read
// from the obs solve-time histogram delta.
func measure(plan Plan, cfg *game.Config) (float64, error) {
	solve := func() error {
		switch plan {
		case PlanDBR:
			_, err := dbr.Solve(cfg, nil, dbr.Options{Workers: 1})
			return err
		case PlanTraversal:
			_, err := gbd.Solve(cfg, gbd.Options{Master: gbd.MasterTraversal, Workers: 1})
			return err
		default:
			_, err := gbd.Solve(cfg, gbd.Options{Master: gbd.MasterPruned, Workers: 1})
			return err
		}
	}
	hist := "tradefl_gbd_solve_seconds"
	if plan == PlanDBR {
		hist = "tradefl_dbr_solve_seconds"
	}
	if err := solve(); err != nil { // warm-up: exclude first-touch allocations
		return 0, fmt.Errorf("fleet: calibrate: %s solve: %w", plan, err)
	}
	before := histSumNs(hist)
	if err := solve(); err != nil {
		return 0, fmt.Errorf("fleet: calibrate: %s solve: %w", plan, err)
	}
	return histSumNs(hist) - before, nil
}

// histSumNs reads the cumulative sum of an obs wall-time histogram in
// nanoseconds.
func histSumNs(name string) float64 {
	if s, ok := obs.Find(obs.Default.Snapshot(), name); ok {
		return s.Sum * 1e9
	}
	return 0
}
