package fleet

import (
	"context"
	"testing"

	"tradefl/internal/game"
	"tradefl/internal/obs"
)

// TestTracingDoesNotChangeSolverOutputs is the instrumentation neutrality
// contract: a fleet batch solved with tracing, flight recording and
// telemetry fully active produces byte-identical profiles and potentials
// to the same batch solved with observability at defaults. Tracing may
// observe the solve; it must never perturb it.
func TestTracingDoesNotChangeSolverOutputs(t *testing.T) {
	const batch = 8
	mkBatch := func() []*game.Config {
		cfgs := make([]*game.Config, batch)
		for i := range cfgs {
			cfg, err := game.DefaultConfig(game.GenOptions{Seed: int64(100 + i), N: 3 + i%3})
			if err != nil {
				t.Fatal(err)
			}
			cfgs[i] = cfg
		}
		return cfgs
	}

	solve := func() []Result {
		eng := New(Options{Plan: PlanAuto})
		return eng.Solve(context.Background(), mkBatch())
	}

	plain := solve()

	obs.EnableTracing(true)
	obs.SeedIDs(2024)
	obs.ResetTraces()
	defer func() {
		obs.EnableTracing(false)
		obs.ResetTraces()
	}()
	traced := solve()

	if len(plain) != len(traced) {
		t.Fatalf("result counts differ: %d vs %d", len(plain), len(traced))
	}
	for i := range plain {
		p, q := plain[i], traced[i]
		if (p.Err == nil) != (q.Err == nil) {
			t.Fatalf("instance %d error mismatch: %v vs %v", i, p.Err, q.Err)
		}
		if p.Err != nil {
			continue
		}
		if p.Potential != q.Potential {
			t.Errorf("instance %d potential differs with tracing on: %v vs %v", i, p.Potential, q.Potential)
		}
		if p.Plan != q.Plan {
			t.Errorf("instance %d plan differs with tracing on: %v vs %v", i, p.Plan, q.Plan)
		}
		if len(p.Profile) != len(q.Profile) {
			t.Fatalf("instance %d profile lengths differ", i)
		}
		for k := range p.Profile {
			if p.Profile[k] != q.Profile[k] {
				t.Errorf("instance %d org %d strategy differs with tracing on: %+v vs %+v",
					i, k, p.Profile[k], q.Profile[k])
			}
		}
	}
}
