package transport

import "tradefl/internal/obs"

var tLog = obs.Component("transport")

// Telemetry of the message fabric. The frame-loss counters exist so chaos
// runs (internal/faults, internal/chaos) can distinguish injected message
// loss from the transport's own parser/overflow loss.
var (
	mHubDropped   = obs.NewCounter("tradefl_transport_hub_dropped_total", "hub messages dropped because the receiver's inbox was full")
	mFrameMalform = obs.NewCounter("tradefl_transport_frames_malformed_total", "TCP frames dropped because they failed to parse as JSON")
	mFrameOverrun = obs.NewCounter("tradefl_transport_frames_overflow_total", "TCP connections aborted because a frame exceeded the scanner buffer")
	mInboxDropped = obs.NewCounter("tradefl_transport_inbox_dropped_total", "parsed TCP frames dropped because the inbox was full")
	mSendRetries  = obs.NewCounter("tradefl_transport_send_retries_total", "TCP send attempts retried after a dial or write failure")
	mSendFailures = obs.NewCounter("tradefl_transport_send_failures_total", "TCP sends that failed after exhausting every retry")
)
