package transport

import (
	"encoding/json"
	"errors"
	"testing"
	"time"
)

func TestHubDelivery(t *testing.T) {
	hub := NewHub()
	a, err := hub.Endpoint("a", 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := hub.Endpoint("b", 4)
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := json.Marshal(map[string]int{"x": 1})
	if err := a.Send("b", Message{Type: "test", Payload: payload}); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-b.Receive():
		if msg.From != "a" || msg.Type != "test" {
			t.Errorf("got %+v", msg)
		}
	case <-time.After(time.Second):
		t.Fatal("message not delivered")
	}
}

func TestHubUnknownPeer(t *testing.T) {
	hub := NewHub()
	a, _ := hub.Endpoint("a", 1)
	if err := a.Send("ghost", Message{Type: "x"}); !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("err = %v, want ErrUnknownPeer", err)
	}
}

func TestHubDuplicateEndpoint(t *testing.T) {
	hub := NewHub()
	if _, err := hub.Endpoint("a", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := hub.Endpoint("a", 1); err == nil {
		t.Error("duplicate endpoint accepted")
	}
}

func TestHubCloseSemantics(t *testing.T) {
	hub := NewHub()
	a, _ := hub.Endpoint("a", 1)
	b, _ := hub.Endpoint("b", 1)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	// Receive channel closes.
	if _, ok := <-b.Receive(); ok {
		t.Error("closed endpoint still receiving")
	}
	// Sending to a removed endpoint errors.
	if err := a.Send("b", Message{Type: "x"}); !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("err = %v, want ErrUnknownPeer after close", err)
	}
	// Sending from a closed endpoint errors.
	if err := b.Send("a", Message{Type: "x"}); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v, want ErrClosed", err)
	}
	// Double close is a no-op.
	if err := b.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	a, err := NewTCPNode("a", "127.0.0.1:0", 8)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCPNode("b", "127.0.0.1:0", 8)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.RegisterPeer("b", b.Addr())
	b.RegisterPeer("a", a.Addr())

	payload, _ := json.Marshal("ping")
	if err := a.Send("b", Message{Type: "ping", Payload: payload}); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-b.Receive():
		if msg.From != "a" || msg.Type != "ping" {
			t.Errorf("got %+v", msg)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("tcp message not delivered")
	}
	// Reply path.
	if err := b.Send("a", Message{Type: "pong"}); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-a.Receive():
		if msg.Type != "pong" {
			t.Errorf("got %+v", msg)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("tcp reply not delivered")
	}
}

func TestTCPUnknownPeerAndClosed(t *testing.T) {
	a, err := NewTCPNode("a", "127.0.0.1:0", 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send("ghost", Message{Type: "x"}); !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("err = %v, want ErrUnknownPeer", err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("ghost", Message{Type: "x"}); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v, want ErrClosed", err)
	}
	if err := a.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestTCPManyMessagesInOrderTolerant(t *testing.T) {
	a, err := NewTCPNode("a", "127.0.0.1:0", 64)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCPNode("b", "127.0.0.1:0", 64)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.RegisterPeer("b", b.Addr())
	const n = 20
	for i := 0; i < n; i++ {
		payload, _ := json.Marshal(i)
		if err := a.Send("b", Message{Type: "seq", Payload: payload}); err != nil {
			t.Fatal(err)
		}
	}
	got := map[int]bool{}
	timeout := time.After(5 * time.Second)
	for len(got) < n {
		select {
		case msg := <-b.Receive():
			var v int
			if err := json.Unmarshal(msg.Payload, &v); err != nil {
				t.Fatal(err)
			}
			got[v] = true
		case <-timeout:
			t.Fatalf("received only %d/%d messages", len(got), n)
		}
	}
}
