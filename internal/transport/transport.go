// Package transport provides the message-passing fabric the distributed
// DBR engine runs on: a process-local in-memory hub for simulations and
// tests, and a TCP implementation (length-delimited JSON frames) for true
// multi-process deployments. Both implement the same Transport interface,
// so the DBR protocol code is identical in either setting — matching the
// paper's claim that organizations decide autonomously "without the need
// for interaction with a central parameter server".
package transport

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Message is one unit of protocol traffic.
type Message struct {
	// From names the sending endpoint.
	From string `json:"from"`
	// Type tags the protocol message kind.
	Type string `json:"type"`
	// Payload carries the JSON-encoded protocol body.
	Payload json.RawMessage `json:"payload,omitempty"`
}

// Transport is a named endpoint that can send to peers and receive.
type Transport interface {
	// Name returns this endpoint's name.
	Name() string
	// Send delivers msg to the named peer.
	Send(to string, msg Message) error
	// Receive returns the channel of inbound messages. It is closed when
	// the transport closes.
	Receive() <-chan Message
	// Close releases resources and closes the receive channel.
	Close() error
}

// ErrUnknownPeer is returned when sending to an unregistered endpoint.
var ErrUnknownPeer = errors.New("transport: unknown peer")

// ErrClosed is returned when using a closed transport.
var ErrClosed = errors.New("transport: closed")

// Hub is an in-memory switchboard connecting named endpoints.
type Hub struct {
	mu        sync.RWMutex
	endpoints map[string]*hubEndpoint
}

// NewHub creates an empty hub.
func NewHub() *Hub {
	return &Hub{endpoints: make(map[string]*hubEndpoint)}
}

// Endpoint registers (or returns an error for a duplicate) a named
// endpoint with the given inbound buffer size.
func (h *Hub) Endpoint(name string, buffer int) (Transport, error) {
	if buffer < 1 {
		buffer = 1
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, dup := h.endpoints[name]; dup {
		return nil, fmt.Errorf("transport: duplicate endpoint %q", name)
	}
	ep := &hubEndpoint{hub: h, name: name, inbox: make(chan Message, buffer)}
	h.endpoints[name] = ep
	return ep, nil
}

type hubEndpoint struct {
	hub    *Hub
	name   string
	inbox  chan Message
	mu     sync.Mutex
	closed bool
}

var _ Transport = (*hubEndpoint)(nil)

func (e *hubEndpoint) Name() string { return e.name }

func (e *hubEndpoint) Send(to string, msg Message) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	e.mu.Unlock()
	msg.From = e.name
	e.hub.mu.RLock()
	peer, ok := e.hub.endpoints[to]
	e.hub.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownPeer, to)
	}
	peer.deliver(msg)
	return nil
}

// deliver enqueues msg unless the peer has closed.
func (e *hubEndpoint) deliver(msg Message) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	e.inbox <- msg
}

func (e *hubEndpoint) Receive() <-chan Message { return e.inbox }

func (e *hubEndpoint) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	close(e.inbox)
	e.hub.mu.Lock()
	delete(e.hub.endpoints, e.name)
	e.hub.mu.Unlock()
	return nil
}

// TCPNode is a Transport over TCP with one listener per endpoint and
// newline-delimited JSON frames. Peers are registered by name → address.
type TCPNode struct {
	name  string
	ln    net.Listener
	inbox chan Message

	mu     sync.Mutex
	peers  map[string]string
	closed bool
	wg     sync.WaitGroup
}

var _ Transport = (*TCPNode)(nil)

// NewTCPNode listens on addr ("127.0.0.1:0" for an ephemeral port).
func NewTCPNode(name, addr string, buffer int) (*TCPNode, error) {
	if buffer < 1 {
		buffer = 64
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	n := &TCPNode{
		name:  name,
		ln:    ln,
		inbox: make(chan Message, buffer),
		peers: make(map[string]string),
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the node's listen address for peer registration.
func (n *TCPNode) Addr() string { return n.ln.Addr().String() }

// RegisterPeer maps a peer name to its listen address.
func (n *TCPNode) RegisterPeer(name, addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers[name] = addr
}

func (n *TCPNode) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.wg.Add(1)
		go n.readConn(conn)
	}
}

func (n *TCPNode) readConn(conn net.Conn) {
	defer n.wg.Done()
	defer conn.Close()
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for scanner.Scan() {
		var msg Message
		if err := json.Unmarshal(scanner.Bytes(), &msg); err != nil {
			continue // drop malformed frames
		}
		n.mu.Lock()
		closed := n.closed
		n.mu.Unlock()
		if closed {
			return
		}
		select {
		case n.inbox <- msg:
		default:
			// Inbox full: drop rather than deadlock the reader; the DBR
			// protocol is token-based and resends on timeout.
		}
	}
}

func (n *TCPNode) Name() string { return n.name }

// Send dials the peer and writes one frame. Dial-per-message keeps the
// implementation simple and robust for the protocol's low message rate.
func (n *TCPNode) Send(to string, msg Message) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	addr, ok := n.peers[to]
	n.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownPeer, to)
	}
	msg.From = n.name
	raw, err := json.Marshal(msg)
	if err != nil {
		return fmt.Errorf("transport: marshal: %w", err)
	}
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return fmt.Errorf("transport: dial %s: %w", to, err)
	}
	defer conn.Close()
	if err := conn.SetWriteDeadline(time.Now().Add(5 * time.Second)); err != nil {
		return err
	}
	if _, err := conn.Write(append(raw, '\n')); err != nil {
		return fmt.Errorf("transport: write to %s: %w", to, err)
	}
	return nil
}

func (n *TCPNode) Receive() <-chan Message { return n.inbox }

// Close stops the listener, waits for reader goroutines and closes the
// inbox.
func (n *TCPNode) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.mu.Unlock()
	err := n.ln.Close()
	n.wg.Wait()
	close(n.inbox)
	return err
}
