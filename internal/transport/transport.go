// Package transport provides the message-passing fabric the distributed
// DBR engine runs on: a process-local in-memory hub for simulations and
// tests, and a TCP implementation (length-delimited JSON frames) for true
// multi-process deployments. Both implement the same Transport interface,
// so the DBR protocol code is identical in either setting — matching the
// paper's claim that organizations decide autonomously "without the need
// for interaction with a central parameter server".
package transport

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"tradefl/internal/obs"
)

// Message is one unit of protocol traffic.
type Message struct {
	// From names the sending endpoint.
	From string `json:"from"`
	// Type tags the protocol message kind.
	Type string `json:"type"`
	// Trace optionally carries distributed-trace propagation context; the
	// fabric forwards it opaquely (duplicated or replayed frames carry the
	// same context, so receiver-side dedup also dedups trace continuation).
	Trace *obs.TraceContext `json:"trace,omitempty"`
	// Payload carries the JSON-encoded protocol body.
	Payload json.RawMessage `json:"payload,omitempty"`
}

// Transport is a named endpoint that can send to peers and receive.
type Transport interface {
	// Name returns this endpoint's name.
	Name() string
	// Send delivers msg to the named peer.
	Send(to string, msg Message) error
	// Receive returns the channel of inbound messages. It is closed when
	// the transport closes.
	Receive() <-chan Message
	// Close releases resources and closes the receive channel.
	Close() error
}

// ErrUnknownPeer is returned when sending to an unregistered endpoint.
var ErrUnknownPeer = errors.New("transport: unknown peer")

// ErrClosed is returned when using a closed transport.
var ErrClosed = errors.New("transport: closed")

// Hub is an in-memory switchboard connecting named endpoints.
type Hub struct {
	mu        sync.RWMutex
	endpoints map[string]*hubEndpoint
}

// NewHub creates an empty hub.
func NewHub() *Hub {
	return &Hub{endpoints: make(map[string]*hubEndpoint)}
}

// Endpoint registers (or returns an error for a duplicate) a named
// endpoint with the given inbound buffer size.
func (h *Hub) Endpoint(name string, buffer int) (Transport, error) {
	if buffer < 1 {
		buffer = 1
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, dup := h.endpoints[name]; dup {
		return nil, fmt.Errorf("transport: duplicate endpoint %q", name)
	}
	ep := &hubEndpoint{hub: h, name: name, inbox: make(chan Message, buffer)}
	h.endpoints[name] = ep
	return ep, nil
}

type hubEndpoint struct {
	hub    *Hub
	name   string
	inbox  chan Message
	mu     sync.Mutex
	closed bool
}

var _ Transport = (*hubEndpoint)(nil)

func (e *hubEndpoint) Name() string { return e.name }

func (e *hubEndpoint) Send(to string, msg Message) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	e.mu.Unlock()
	msg.From = e.name
	e.hub.mu.RLock()
	peer, ok := e.hub.endpoints[to]
	e.hub.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownPeer, to)
	}
	peer.deliver(msg)
	return nil
}

// deliver enqueues msg unless the peer has closed. The send is
// non-blocking while the lock is held: a blocking send here would wedge
// the sender inside the peer's lock as soon as the inbox filled, and any
// later Close() would deadlock behind it. A full inbox drops instead,
// mirroring the TCP path; ring protocols resend on timeout.
func (e *hubEndpoint) deliver(msg Message) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	select {
	case e.inbox <- msg:
	default:
		mHubDropped.Inc()
		tLog.Debug("hub inbox full, dropping", "to", e.name, "from", msg.From, "type", msg.Type)
	}
}

func (e *hubEndpoint) Receive() <-chan Message { return e.inbox }

func (e *hubEndpoint) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	close(e.inbox)
	e.hub.mu.Lock()
	delete(e.hub.endpoints, e.name)
	e.hub.mu.Unlock()
	return nil
}

// TCPNode is a Transport over TCP with one listener per endpoint and
// newline-delimited JSON frames. Peers are registered by name → address.
type TCPNode struct {
	name  string
	ln    net.Listener
	inbox chan Message

	mu     sync.Mutex
	peers  map[string]string
	closed bool
	wg     sync.WaitGroup

	// Send retry policy; see SetSendRetryPolicy.
	sendAttempts int
	sendBackoff  time.Duration
}

var _ Transport = (*TCPNode)(nil)

// Default send retry policy: a failed dial or write is retried twice more
// with a short linear backoff before Send reports the peer unreachable.
const (
	DefaultSendAttempts = 3
	DefaultSendBackoff  = 25 * time.Millisecond
)

// NewTCPNode listens on addr ("127.0.0.1:0" for an ephemeral port).
func NewTCPNode(name, addr string, buffer int) (*TCPNode, error) {
	if buffer < 1 {
		buffer = 64
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	n := &TCPNode{
		name:         name,
		ln:           ln,
		inbox:        make(chan Message, buffer),
		peers:        make(map[string]string),
		sendAttempts: DefaultSendAttempts,
		sendBackoff:  DefaultSendBackoff,
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// SetSendRetryPolicy bounds Send's dial/write retries: attempts total
// tries (minimum 1) separated by backoff×attempt. A restarting peer
// (crash + re-listen on the same address) is reached again without the
// caller seeing a transient refusal.
func (n *TCPNode) SetSendRetryPolicy(attempts int, backoff time.Duration) {
	if attempts < 1 {
		attempts = 1
	}
	if backoff < 0 {
		backoff = 0
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.sendAttempts = attempts
	n.sendBackoff = backoff
}

// Addr returns the node's listen address for peer registration.
func (n *TCPNode) Addr() string { return n.ln.Addr().String() }

// RegisterPeer maps a peer name to its listen address.
func (n *TCPNode) RegisterPeer(name, addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers[name] = addr
}

func (n *TCPNode) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.wg.Add(1)
		go n.readConn(conn)
	}
}

func (n *TCPNode) readConn(conn net.Conn) {
	defer n.wg.Done()
	defer conn.Close()
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for scanner.Scan() {
		var msg Message
		if err := json.Unmarshal(scanner.Bytes(), &msg); err != nil {
			// Malformed frame (torn write, garbage peer): account for it
			// so chaos runs can tell parser loss from injected loss.
			mFrameMalform.Inc()
			tLog.Debug("dropping malformed frame", "node", n.name, "bytes", len(scanner.Bytes()), "err", err)
			continue
		}
		n.mu.Lock()
		closed := n.closed
		n.mu.Unlock()
		if closed {
			return
		}
		select {
		case n.inbox <- msg:
		default:
			// Inbox full: drop rather than deadlock the reader; the DBR
			// protocol is token-based and resends on timeout.
			mInboxDropped.Inc()
			tLog.Debug("inbox full, dropping frame", "node", n.name, "from", msg.From, "type", msg.Type)
		}
	}
	if err := scanner.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			// A frame larger than the scanner buffer kills the connection;
			// the rest of that connection's stream is lost with it.
			mFrameOverrun.Inc()
			tLog.Debug("dropping connection on oversized frame", "node", n.name, "err", err)
			return
		}
		tLog.Debug("connection read error", "node", n.name, "err", err)
	}
}

func (n *TCPNode) Name() string { return n.name }

// Send dials the peer and writes one frame. Dial-per-message keeps the
// implementation simple and robust for the protocol's low message rate:
// a torn write only poisons its own connection, never a shared stream.
// Transient dial/write failures (peer restarting, kernel backlog full)
// are retried per the node's retry policy before the peer is reported
// unreachable.
func (n *TCPNode) Send(to string, msg Message) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	addr, ok := n.peers[to]
	attempts, backoff := n.sendAttempts, n.sendBackoff
	n.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownPeer, to)
	}
	msg.From = n.name
	raw, err := json.Marshal(msg)
	if err != nil {
		return fmt.Errorf("transport: marshal: %w", err)
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			mSendRetries.Inc()
			obs.FlightRecord("transport", "send-retry",
				fmt.Sprintf("%s->%s attempt %d: %v", n.name, to, attempt+1, lastErr))
			tLog.Debug("retrying send", "node", n.name, "to", to, "attempt", attempt+1, "err", lastErr)
			time.Sleep(backoff * time.Duration(attempt))
			// The node may have closed while we were backing off.
			n.mu.Lock()
			closed := n.closed
			n.mu.Unlock()
			if closed {
				return ErrClosed
			}
		}
		if lastErr = n.writeFrame(addr, to, raw); lastErr == nil {
			return nil
		}
	}
	mSendFailures.Inc()
	obs.FlightRecord("transport", "send-failed",
		fmt.Sprintf("%s->%s after %d attempts: %v", n.name, to, attempts, lastErr))
	return lastErr
}

// writeFrame performs one dial + write attempt.
func (n *TCPNode) writeFrame(addr, to string, raw []byte) error {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return fmt.Errorf("transport: dial %s: %w", to, err)
	}
	defer conn.Close()
	if err := conn.SetWriteDeadline(time.Now().Add(5 * time.Second)); err != nil {
		return err
	}
	if _, err := conn.Write(append(raw, '\n')); err != nil {
		return fmt.Errorf("transport: write to %s: %w", to, err)
	}
	return nil
}

func (n *TCPNode) Receive() <-chan Message { return n.inbox }

// Close stops the listener, waits for reader goroutines and closes the
// inbox.
func (n *TCPNode) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.mu.Unlock()
	err := n.ln.Close()
	n.wg.Wait()
	close(n.inbox)
	return err
}
