package transport

import (
	"bytes"
	"encoding/json"
	"net"
	"testing"
	"time"
)

// TestHubFullInboxDoesNotDeadlock floods a buffer-1 endpoint well past
// capacity: sends must stay non-blocking (overflow drops) and Close must
// not deadlock behind a blocked deliver. Regression test for deliver()
// sending on the inbox while holding the endpoint lock.
func TestHubFullInboxDoesNotDeadlock(t *testing.T) {
	hub := NewHub()
	a, err := hub.Endpoint("a", 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := hub.Endpoint("b", 1)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ { // nobody drains b; inbox fills at 1
			if err := a.Send("b", Message{Type: "flood"}); err != nil {
				t.Error(err)
				return
			}
		}
		if err := b.Close(); err != nil {
			t.Error(err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("hub send/close deadlocked on a full inbox")
	}
}

// dialRaw writes raw bytes straight at a node's listener, bypassing Send.
func dialRaw(t *testing.T, addr string, raw []byte) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(raw); err != nil {
		t.Fatal(err)
	}
}

func recvOne(t *testing.T, ch <-chan Message, want string) {
	t.Helper()
	select {
	case msg := <-ch:
		if msg.Type != want {
			t.Fatalf("received %q, want %q", msg.Type, want)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("message %q never delivered", want)
	}
}

// TestTCPOversizedFrame sends a frame larger than the 4 MiB scanner
// buffer: the connection is aborted and counted, and the node keeps
// serving fresh connections afterwards.
func TestTCPOversizedFrame(t *testing.T) {
	node, err := NewTCPNode("n", "127.0.0.1:0", 8)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	before := mFrameOverrun.Value()

	huge := bytes.Repeat([]byte("x"), 5*1024*1024) // > 4 MiB, no newline
	dialRaw(t, node.Addr(), huge)

	// The overflow is detected when the reader gives up on the stream.
	deadline := time.Now().Add(5 * time.Second)
	for mFrameOverrun.Value() == before {
		if time.Now().After(deadline) {
			t.Fatal("oversized frame never counted")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The node still accepts and parses subsequent connections.
	peer, err := NewTCPNode("peer", "127.0.0.1:0", 8)
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	peer.RegisterPeer("n", node.Addr())
	if err := peer.Send("n", Message{Type: "after-overflow"}); err != nil {
		t.Fatal(err)
	}
	recvOne(t, node.Receive(), "after-overflow")
}

// TestTCPTornWriteThenReconnect delivers a half frame (write cut without
// the newline terminator), then a valid frame on a fresh connection: the
// torn bytes are counted as a malformed frame and the clean retry lands.
func TestTCPTornWriteThenReconnect(t *testing.T) {
	node, err := NewTCPNode("n", "127.0.0.1:0", 8)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	before := mFrameMalform.Value()

	full, err := json.Marshal(Message{From: "peer", Type: "torn"})
	if err != nil {
		t.Fatal(err)
	}
	dialRaw(t, node.Addr(), full[:len(full)/2]) // torn mid-frame, conn closed

	deadline := time.Now().Add(5 * time.Second)
	for mFrameMalform.Value() == before {
		if time.Now().After(deadline) {
			t.Fatal("torn frame never counted as malformed")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Peer reconnects and resends the full frame.
	peer, err := NewTCPNode("peer", "127.0.0.1:0", 8)
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	peer.RegisterPeer("n", node.Addr())
	if err := peer.Send("n", Message{Type: "torn"}); err != nil {
		t.Fatal(err)
	}
	recvOne(t, node.Receive(), "torn")
}

// TestTCPSendToRestartedPeer closes a peer, re-listens on the same
// address under a fresh node, and sends again: the sender's bounded
// retries bridge the restart gap without re-registration.
func TestTCPSendToRestartedPeer(t *testing.T) {
	sender, err := NewTCPNode("sender", "127.0.0.1:0", 8)
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()
	first, err := NewTCPNode("peer", "127.0.0.1:0", 8)
	if err != nil {
		t.Fatal(err)
	}
	addr := first.Addr()
	sender.RegisterPeer("peer", addr)
	if err := sender.Send("peer", Message{Type: "before"}); err != nil {
		t.Fatal(err)
	}
	recvOne(t, first.Receive(), "before")
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}

	// While the peer is down, a send eventually errors out.
	sender.SetSendRetryPolicy(2, time.Millisecond)
	if err := sender.Send("peer", Message{Type: "into-the-void"}); err == nil {
		t.Fatal("send to downed peer succeeded")
	}

	// Restart on the same address; generous retries cover the race where
	// the new listener is still coming up.
	second, err := NewTCPNode("peer", addr, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	sender.SetSendRetryPolicy(5, 20*time.Millisecond)
	if err := sender.Send("peer", Message{Type: "after-restart"}); err != nil {
		t.Fatal(err)
	}
	recvOne(t, second.Receive(), "after-restart")
}

// TestTCPSendRetriesBridgeLateListener starts the target listener only
// after the first attempts have failed; the retry loop lands the frame.
func TestTCPSendRetriesBridgeLateListener(t *testing.T) {
	sender, err := NewTCPNode("sender", "127.0.0.1:0", 8)
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()

	// Reserve an address, then free it so the first dial attempts fail.
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr().String()
	_ = probe.Close()
	sender.RegisterPeer("late", addr)
	sender.SetSendRetryPolicy(10, 30*time.Millisecond)

	started := make(chan *TCPNode, 1)
	go func() {
		time.Sleep(60 * time.Millisecond) // let the first attempts fail
		node, err := NewTCPNode("late", addr, 8)
		if err != nil {
			started <- nil
			return
		}
		started <- node
	}()
	err = sender.Send("late", Message{Type: "persistent"})
	late := <-started
	if late == nil {
		t.Skip("could not re-bind probe address")
	}
	defer late.Close()
	if err != nil {
		t.Fatalf("send across late listener start: %v", err)
	}
	recvOne(t, late.Receive(), "persistent")
}
