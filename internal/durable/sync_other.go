//go:build !linux

package durable

import "os"

// SyncData flushes f's data and metadata to stable storage. Platforms
// without fdatasync(2) fall back to a full fsync.
func SyncData(f *os.File) error { return f.Sync() }
