// Package durable provides the crash-safety primitives the settlement
// chain's persistence layer is built on: atomic whole-file replacement
// (temp file + fsync + rename + directory fsync) and a length-prefixed,
// CRC-framed record format with torn-tail detection, so a process killed
// at any byte offset leaves either a fully recoverable file or a tail
// that is provably garbage and can be truncated away.
//
// The framing is deliberately minimal — stdlib only, no compression, no
// schema — because the callers (internal/chain's write-ahead log and
// snapshot writer) carry their own JSON payloads and replay-verify
// everything they read back; the frame layer only has to answer "was this
// record written completely?".
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"syscall"
)

// Frame layout: an 8-byte header followed by the payload.
//
//	bytes 0..3  little-endian uint32 payload length
//	bytes 4..7  little-endian uint32 CRC-32 (Castagnoli) of the payload
//
// A frame is valid only if the full payload is present and its checksum
// matches. Anything else — a short header, a short payload, a checksum
// mismatch — is a torn tail: the writer was killed mid-append and the
// bytes carry no durable record.
const frameHeaderSize = 8

// MaxFrameSize bounds a single record; a length field above it is treated
// as corruption rather than an attempt to allocate gigabytes.
const MaxFrameSize = 32 << 20

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrTornTail marks a frame that was not completely written: the scan
// stopped there, and everything from that offset on is garbage.
var ErrTornTail = errors.New("durable: torn frame tail")

// AppendFrame encodes payload as one frame into buf (appending) and
// returns the extended slice. Use one buffer for a whole group-commit
// batch and hand it to the file in a single Write.
//
// payload must be non-empty: an empty payload frames to eight zero bytes
// (CRC-32C of nothing is zero), which is indistinguishable from the
// zero-filled pre-allocation a log writes ahead of its frontier and is
// read back by ScanFrames as a clean end of log, not a record.
func AppendFrame(buf, payload []byte) []byte {
	if len(payload) == 0 {
		panic("durable: empty frame payload is reserved as the end-of-log marker")
	}
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// FrameSize returns the on-disk size of a frame carrying n payload bytes.
func FrameSize(n int) int { return frameHeaderSize + n }

// ScanFrames reads frames from r, invoking fn with each complete, checksum-
// valid payload (the slice is only valid during the call). It returns the
// byte offset of the end of the last valid frame and, when the stream ends
// in an incomplete or corrupt frame, ErrTornTail — the caller decides
// whether a torn tail is recoverable (truncate the final log segment) or
// fatal (a non-final segment must end cleanly).
//
// An fn error aborts the scan and is returned verbatim with the offset of
// the end of the offending frame.
func ScanFrames(r io.Reader, fn func(payload []byte) error) (int64, error) {
	br := newByteReader(r)
	var clean int64
	var hdr [frameHeaderSize]byte
	var payload []byte
	for {
		n, err := io.ReadFull(br, hdr[:])
		if err == io.EOF {
			return clean, nil // clean end on a frame boundary
		}
		if err == io.ErrUnexpectedEOF {
			return clean, fmt.Errorf("%w: %d header bytes at offset %d", ErrTornTail, n, clean)
		}
		if err != nil {
			return clean, err
		}
		size := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if size == 0 && want == 0 {
			// An all-zero header is pre-extended, never-written space (the
			// log zero-fills ahead of the write frontier so steady-state
			// flushes stay metadata-free). No real record is empty, so this
			// is a clean end of log, not a tear.
			return clean, nil
		}
		if size > MaxFrameSize {
			return clean, fmt.Errorf("%w: frame length %d exceeds limit at offset %d", ErrTornTail, size, clean)
		}
		if cap(payload) < int(size) {
			payload = make([]byte, size)
		}
		payload = payload[:size]
		if _, err := io.ReadFull(br, payload); err != nil {
			return clean, fmt.Errorf("%w: short payload at offset %d", ErrTornTail, clean)
		}
		if got := crc32.Checksum(payload, crcTable); got != want {
			return clean, fmt.Errorf("%w: checksum mismatch at offset %d", ErrTornTail, clean)
		}
		end := clean + int64(frameHeaderSize) + int64(size)
		if fn != nil {
			if err := fn(payload); err != nil {
				return end, err
			}
		}
		clean = end
	}
}

// newByteReader wraps r in a small buffered reader unless it already is
// one; ScanFrames does many tiny reads.
func newByteReader(r io.Reader) io.Reader {
	type buffered interface{ ReadByte() (byte, error) }
	if _, ok := r.(buffered); ok {
		return r
	}
	return &bufReader{r: r, buf: make([]byte, 0, 64<<10)}
}

// bufReader is a minimal buffering io.Reader (bufio.Reader would be fine;
// this avoids importing bufio into a package several hot paths link).
type bufReader struct {
	r   io.Reader
	buf []byte
	off int
}

func (b *bufReader) Read(p []byte) (int, error) {
	if b.off == len(b.buf) {
		b.buf = b.buf[:cap(b.buf)]
		n, err := b.r.Read(b.buf)
		b.buf = b.buf[:n]
		b.off = 0
		if n == 0 {
			return 0, err
		}
	}
	n := copy(p, b.buf[b.off:])
	b.off += n
	return n, nil
}

// TruncateTornTail scans the frames of the file at path and, if the file
// ends in a torn (incomplete or corrupt) final frame, truncates it back to
// the end of the last valid frame, fsyncing the result. It returns the
// number of bytes removed. Records before the tear are untouched; calling
// it again is a no-op (idempotent recovery).
func TruncateTornTail(path string, fn func(payload []byte) error) (removed int64, err error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	clean, scanErr := ScanFrames(f, fn)
	if scanErr != nil && !errors.Is(scanErr, ErrTornTail) {
		return 0, scanErr
	}
	removed = st.Size() - clean
	if removed == 0 {
		return 0, nil
	}
	// A clean scan that stopped short of the file size hit zero-fill
	// padding; a torn scan hit a partial frame. Either way everything past
	// the clean offset is not log content — drop it.
	if err := f.Truncate(clean); err != nil {
		return 0, fmt.Errorf("durable: truncate torn tail: %w", err)
	}
	if err := f.Sync(); err != nil {
		return 0, fmt.Errorf("durable: sync after truncate: %w", err)
	}
	return removed, nil
}

// ZeroExtend materializes zeros in [from, to) of f and fsyncs, moving the
// allocated file size past the caller's write frontier. Rewriting those
// zeros later changes no metadata, so a following SyncData is a pure data
// flush — no journal commit. The zeros themselves read as a clean end of
// log (see ScanFrames), so a crash anywhere in this scheme stays
// recoverable.
func ZeroExtend(f *os.File, from, to int64) error {
	if to <= from {
		return nil
	}
	zeros := make([]byte, 64<<10)
	for off := from; off < to; {
		n := int64(len(zeros))
		if off+n > to {
			n = to - off
		}
		if _, err := f.WriteAt(zeros[:n], off); err != nil {
			return fmt.Errorf("durable: zero-extend: %w", err)
		}
		off += n
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("durable: zero-extend sync: %w", err)
	}
	return nil
}

// WriteFileAtomic replaces the file at path with data in a crash-safe way:
// the bytes land in a temp file in the same directory, are fsynced, and
// only then renamed over path, followed by a directory fsync so the rename
// itself is durable. A crash at any point leaves either the old complete
// file or the new complete file — never a partial mix.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("durable: temp file: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("durable: write %s: %w", tmpName, err)
	}
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close()
		return fmt.Errorf("durable: chmod %s: %w", tmpName, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("durable: fsync %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("durable: close %s: %w", tmpName, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("durable: rename: %w", err)
	}
	return SyncDir(dir)
}

// SyncDir fsyncs a directory so a preceding rename/create/remove in it is
// durable. Filesystems that do not support directory fsync report EINVAL
// or ENOTSUP; those are ignored (the rename is then as durable as the
// platform allows).
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("durable: open dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		if errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP) {
			return nil
		}
		return fmt.Errorf("durable: fsync dir: %w", err)
	}
	return nil
}
