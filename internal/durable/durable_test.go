package durable

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		[]byte("hello"),
		{0x00},                            // single zero byte is a real record; only the empty payload is reserved
		bytes.Repeat([]byte{0xAB}, 70000), // spans the scanner's buffer
		[]byte(`{"kind":"tx"}`),
	}
	var buf []byte
	for _, p := range payloads {
		buf = AppendFrame(buf, p)
	}
	var got [][]byte
	off, err := ScanFrames(bytes.NewReader(buf), func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if off != int64(len(buf)) {
		t.Fatalf("clean offset %d, want %d", off, len(buf))
	}
	if len(got) != len(payloads) {
		t.Fatalf("got %d frames, want %d", len(got), len(payloads))
	}
	for i := range payloads {
		if !bytes.Equal(got[i], payloads[i]) {
			t.Fatalf("frame %d mismatch", i)
		}
	}
}

// TestTornTailEveryPrefix truncates a multi-frame stream at every byte
// offset and requires the scan to recover exactly the frames that were
// completely written — never a partial or corrupt one.
func TestTornTailEveryPrefix(t *testing.T) {
	var full []byte
	var ends []int64 // clean offsets after each frame
	for i := 0; i < 6; i++ {
		full = AppendFrame(full, []byte(fmt.Sprintf("record-%d-%s", i, bytes.Repeat([]byte{byte(i)}, i*7))))
		ends = append(ends, int64(len(full)))
	}
	for cut := 0; cut <= len(full); cut++ {
		var n int
		off, err := ScanFrames(bytes.NewReader(full[:cut]), func(p []byte) error {
			n++
			return nil
		})
		// The clean offset must be the largest frame end <= cut, and the
		// frame count the number of frames wholly inside the prefix.
		wantOff := int64(0)
		wantN := 0
		for i, e := range ends {
			if e <= int64(cut) {
				wantOff, wantN = e, i+1
			}
		}
		if off != wantOff || n != wantN {
			t.Fatalf("cut %d: got off=%d n=%d, want off=%d n=%d", cut, off, n, wantOff, wantN)
		}
		if int64(cut) == wantOff && err != nil {
			t.Fatalf("cut %d on boundary: unexpected error %v", cut, err)
		}
		if int64(cut) != wantOff && !errors.Is(err, ErrTornTail) {
			t.Fatalf("cut %d mid-frame: err = %v, want ErrTornTail", cut, err)
		}
	}
}

func TestScanRejectsCorruptPayload(t *testing.T) {
	var buf []byte
	buf = AppendFrame(buf, []byte("good"))
	buf = AppendFrame(buf, []byte("flipped"))
	buf[len(buf)-1] ^= 0xFF // corrupt last payload byte
	var n int
	off, err := ScanFrames(bytes.NewReader(buf), func([]byte) error { n++; return nil })
	if !errors.Is(err, ErrTornTail) {
		t.Fatalf("err = %v, want ErrTornTail", err)
	}
	if n != 1 {
		t.Fatalf("delivered %d frames, want 1", n)
	}
	if off != int64(FrameSize(4)) {
		t.Fatalf("clean offset %d, want %d", off, FrameSize(4))
	}
}

func TestScanRejectsOversizedLength(t *testing.T) {
	buf := AppendFrame(nil, []byte("x"))
	buf[0], buf[1], buf[2], buf[3] = 0xFF, 0xFF, 0xFF, 0x7F // ~2GiB length
	_, err := ScanFrames(bytes.NewReader(buf), nil)
	if !errors.Is(err, ErrTornTail) {
		t.Fatalf("err = %v, want ErrTornTail", err)
	}
}

func TestTruncateTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seg")
	var buf []byte
	buf = AppendFrame(buf, []byte("one"))
	buf = AppendFrame(buf, []byte("two"))
	clean := len(buf)
	buf = append(buf, AppendFrame(nil, []byte("three"))[:7]...) // torn append
	if err := os.WriteFile(path, buf, 0o600); err != nil {
		t.Fatal(err)
	}
	removed, err := TruncateTornTail(path, nil)
	if err != nil {
		t.Fatalf("truncate: %v", err)
	}
	if removed != int64(len(buf)-clean) {
		t.Fatalf("removed %d bytes, want %d", removed, len(buf)-clean)
	}
	st, _ := os.Stat(path)
	if st.Size() != int64(clean) {
		t.Fatalf("size %d after truncate, want %d", st.Size(), clean)
	}
	// Idempotent: a second pass removes nothing.
	removed, err = TruncateTornTail(path, nil)
	if err != nil || removed != 0 {
		t.Fatalf("second truncate: removed=%d err=%v", removed, err)
	}
}

// TestZeroPaddingReadsAsCleanEOF covers the pre-extension scheme: records
// followed by zero-filled allocation must scan as a clean log ending at
// the last record, and TruncateTornTail must trim the padding.
func TestZeroPaddingReadsAsCleanEOF(t *testing.T) {
	var buf []byte
	buf = AppendFrame(buf, []byte("one"))
	buf = AppendFrame(buf, []byte("two"))
	clean := int64(len(buf))
	padded := append(append([]byte(nil), buf...), make([]byte, 4096)...)
	var n int
	off, err := ScanFrames(bytes.NewReader(padded), func([]byte) error { n++; return nil })
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if off != clean || n != 2 {
		t.Fatalf("clean offset %d (%d frames), want %d (2 frames)", off, n, clean)
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "seg")
	if err := os.WriteFile(path, padded, 0o600); err != nil {
		t.Fatal(err)
	}
	removed, err := TruncateTornTail(path, nil)
	if err != nil {
		t.Fatalf("truncate: %v", err)
	}
	if removed != int64(len(padded))-clean {
		t.Fatalf("removed %d bytes, want %d", removed, int64(len(padded))-clean)
	}
	if st, _ := os.Stat(path); st.Size() != clean {
		t.Fatalf("size %d after trim, want %d", st.Size(), clean)
	}
}

// TestZeroExtend checks the allocation helper leaves readable zeros and
// that rewriting them in place produces a scannable log.
func TestZeroExtend(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seg")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := ZeroExtend(f, 0, 128<<10); err != nil {
		t.Fatal(err)
	}
	if st, _ := f.Stat(); st.Size() != 128<<10 {
		t.Fatalf("size %d after extend, want %d", st.Size(), 128<<10)
	}
	frame := AppendFrame(nil, []byte("rewrites pre-zeroed space"))
	if _, err := f.WriteAt(frame, 0); err != nil {
		t.Fatal(err)
	}
	if err := SyncData(f); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	off, err := ScanFrames(bytes.NewReader(raw), func(p []byte) error {
		got = append([]byte(nil), p...)
		return nil
	})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if off != int64(len(frame)) || string(got) != "rewrites pre-zeroed space" {
		t.Fatalf("scan stopped at %d with %q", off, got)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "doc.json")
	if err := WriteFileAtomic(path, []byte("v1"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("v2-longer"), 0o600); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "v2-longer" {
		t.Fatalf("read back %q err=%v", got, err)
	}
	// No temp litter.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want 1: %v", len(entries), entries)
	}
}
