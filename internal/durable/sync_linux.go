//go:build linux

package durable

import (
	"os"
	"syscall"
)

// SyncData flushes f's data — and the metadata required to read it back,
// such as the file size — to stable storage. On Linux it uses
// fdatasync(2), which skips the mtime-only journal commit a full fsync
// forces; for an append-only log synced on every group commit that cuts
// a measurable slice off each flush.
func SyncData(f *os.File) error {
	for {
		err := syscall.Fdatasync(int(f.Fd()))
		if err == syscall.EINTR {
			continue
		}
		if err != nil {
			return &os.PathError{Op: "fdatasync", Path: f.Name(), Err: err}
		}
		return nil
	}
}
