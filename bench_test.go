package tradefl

// bench_test.go regenerates every table and figure of the paper's
// evaluation (Sec. VI) as Go benchmarks: each BenchmarkFigN/BenchmarkTableN
// runs the corresponding experiment generator end to end (quick
// resolution) and reports headline metrics via b.ReportMetric, so
// `go test -bench=. -benchmem` doubles as the reproduction harness.
// cmd/tradefl-sim produces the full-resolution series.

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"tradefl/internal/accuracy"
	"tradefl/internal/baselines"
	"tradefl/internal/chain"
	"tradefl/internal/core"
	"tradefl/internal/dbr"
	"tradefl/internal/experiments"
	"tradefl/internal/fl"
	"tradefl/internal/fl/dataset"
	"tradefl/internal/fl/model"
	"tradefl/internal/fl/tensor"
	"tradefl/internal/fleet"
	"tradefl/internal/game"
	"tradefl/internal/gbd"
	"tradefl/internal/randx"
)

// benchFigure runs one experiment generator per iteration.
func benchFigure(b *testing.B, id string) *experiments.Figure {
	b.Helper()
	b.ReportAllocs()
	var fig *experiments.Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = experiments.Run(id, experiments.Options{Seed: 7, Quick: true})
		if err != nil {
			b.Fatalf("experiment %s: %v", id, err)
		}
	}
	return fig
}

// lastY returns the final y of the named series (0 if absent).
func lastY(fig *experiments.Figure, name string) float64 {
	s := fig.SeriesByName(name)
	if s == nil || len(s.Y) == 0 {
		return 0
	}
	return s.Y[len(s.Y)-1]
}

func BenchmarkTableI_Contract(b *testing.B) {
	fig := benchFigure(b, "table1")
	b.ReportMetric(float64(len(fig.Series)), "abi-functions")
}

func BenchmarkFig2_DataAccuracy(b *testing.B) {
	fig := benchFigure(b, "fig2")
	b.ReportMetric(lastY(fig, fig.Series[len(fig.Series)-1].Name), "P(d=1)")
}

func BenchmarkFig4_PotentialDynamics(b *testing.B) {
	fig := benchFigure(b, "fig4")
	b.ReportMetric(lastY(fig, "CGBD"), "U-cgbd")
	b.ReportMetric(lastY(fig, "DBR"), "U-dbr")
}

func BenchmarkFig5_PayoffDynamics(b *testing.B) {
	fig := benchFigure(b, "fig5")
	b.ReportMetric(float64(len(fig.Series[0].X)), "sweeps")
}

func BenchmarkFig6_SocialWelfare(b *testing.B) {
	fig := benchFigure(b, "fig6")
	b.ReportMetric(lastY(fig, "DBR"), "welfare-dbr")
	b.ReportMetric(lastY(fig, "TOS"), "welfare-tos")
}

func BenchmarkFig7_GammaWelfareDBR(b *testing.B) {
	fig := benchFigure(b, "fig7")
	peak := 0.0
	for _, y := range fig.Series[0].Y {
		if y > peak {
			peak = y
		}
	}
	b.ReportMetric(peak, "peak-welfare")
}

func BenchmarkFig8_GammaWelfareSchemes(b *testing.B) {
	fig := benchFigure(b, "fig8")
	b.ReportMetric(lastY(fig, "DBR"), "welfare-dbr-maxgamma")
}

func BenchmarkFig9_GammaDamage(b *testing.B) {
	fig := benchFigure(b, "fig9")
	b.ReportMetric(lastY(fig, "DBR"), "damage-dbr-maxgamma")
}

func BenchmarkFig10_GammaMuWelfare(b *testing.B) {
	fig := benchFigure(b, "fig10")
	b.ReportMetric(float64(len(fig.Series)), "mu-curves")
}

func BenchmarkFig11_MuOverheadWelfare(b *testing.B) {
	fig := benchFigure(b, "fig11")
	b.ReportMetric(float64(len(fig.Series)), "weight-curves")
}

func BenchmarkFig12_DataContribution(b *testing.B) {
	fig := benchFigure(b, "fig12")
	b.ReportMetric(lastY(fig, "data:DBR"), "dbr-data-maxgamma")
}

func BenchmarkFig13_TrainingLoss(b *testing.B) {
	fig := benchFigure(b, "fig13")
	b.ReportMetric(lastY(fig, fig.Series[0].Name), "final-loss-dbr")
}

func BenchmarkFig14_TrainingLossSecond(b *testing.B) {
	fig := benchFigure(b, "fig14")
	b.ReportMetric(lastY(fig, fig.Series[0].Name), "final-loss-dbr")
}

func BenchmarkFig15_Accuracy(b *testing.B) {
	fig := benchFigure(b, "fig15")
	b.ReportMetric(lastY(fig, "mobilenet-svhn:DBR"), "acc-dbr")
	b.ReportMetric(lastY(fig, "mobilenet-svhn:GCA"), "acc-gca")
}

// --- Ablation benches (DESIGN.md §5) -----------------------------------

// BenchmarkAblation_MasterSolvers compares the paper's exhaustive traversal
// against the pruned depth-first master-problem solver, each at Workers=1
// (exact serial path) and Workers=GOMAXPROCS (sharded search; identical
// output, see internal/gbd/parallel_test.go).
func BenchmarkAblation_MasterSolvers(b *testing.B) {
	for _, tc := range []struct {
		name   string
		master gbd.MasterSolver
	}{
		{"traversal", gbd.MasterTraversal},
		{"pruned", gbd.MasterPruned},
	} {
		for _, workers := range benchWorkerCounts() {
			b.Run(fmt.Sprintf("%s/workers=%d", tc.name, workers), func(b *testing.B) {
				b.ReportAllocs()
				cfg, err := game.DefaultConfig(game.GenOptions{Seed: 7, NoOrgName: true})
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := gbd.Solve(cfg, gbd.Options{Master: tc.master, Workers: workers}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
	// N=16 incremental A/B: the tentpole's target scale. The exhaustive
	// traversal uses a 2-level grid (2^16 points per master solve; 3^16 is
	// out of reach for any mode), the pruned master the default 3 levels.
	for _, tc := range []struct {
		name     string
		master   gbd.MasterSolver
		cpuSteps int
	}{
		{"traversal", gbd.MasterTraversal, 2},
		{"pruned", gbd.MasterPruned, 3},
	} {
		for _, mode := range []struct {
			name string
			inc  game.Toggle
		}{
			{"on", game.ToggleOn},
			{"off", game.ToggleOff},
		} {
			b.Run(fmt.Sprintf("%s/N=16/incremental=%s", tc.name, mode.name), func(b *testing.B) {
				b.ReportAllocs()
				cfg, err := game.DefaultConfig(game.GenOptions{Seed: 7, N: 16, CPUSteps: tc.cpuSteps, NoOrgName: true})
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := gbd.Solve(cfg, gbd.Options{Master: tc.master, Workers: 1, Incremental: mode.inc}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// benchWorkerCounts returns {1} on a single-core host and {1, GOMAXPROCS}
// otherwise, so serial and parallel variants are only both timed when
// they can actually differ.
func benchWorkerCounts() []int {
	if n := runtime.GOMAXPROCS(0); n > 1 {
		return []int{1, n}
	}
	return []int{1}
}

// BenchmarkAblation_AccuracyModels runs DBR under every data-accuracy form,
// demonstrating the mechanism's independence from the functional form.
func BenchmarkAblation_AccuracyModels(b *testing.B) {
	models := map[string]func() (accuracy.Model, error){
		"sqrt-loss": func() (accuracy.Model, error) {
			return accuracy.NewScaled(accuracy.NewSqrtLoss(5, 1.1), 1000)
		},
		"power-law": func() (accuracy.Model, error) {
			return accuracy.NewPowerLaw(0.2, 0.35)
		},
		"log-saturation": func() (accuracy.Model, error) {
			return accuracy.NewLogSaturation(0.12, 800)
		},
	}
	for name, mk := range models {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			model, err := mk()
			if err != nil {
				b.Fatal(err)
			}
			cfg, err := game.DefaultConfig(game.GenOptions{Seed: 7, Accuracy: model, NoOrgName: true})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := dbr.Solve(cfg, nil, dbr.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Converged {
					b.Fatal("did not converge")
				}
			}
		})
	}
}

// BenchmarkAblation_Solvers compares the three equilibrium solvers on the
// same instance.
func BenchmarkAblation_Solvers(b *testing.B) {
	for _, tc := range []struct {
		name   string
		solver core.Solver
	}{
		{"dbr", core.SolverDBR},
		{"cgbd", core.SolverCGBD},
		{"distributed-dbr", core.SolverDistributedDBR},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			cfg, err := game.DefaultConfig(game.GenOptions{Seed: 7, NoOrgName: true})
			if err != nil {
				b.Fatal(err)
			}
			m, err := core.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Run(ctx, core.Options{Solver: tc.solver}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Micro benches on hot paths -----------------------------------------

func BenchmarkPayoffs(b *testing.B) {
	b.ReportAllocs()
	cfg, err := game.DefaultConfig(game.GenOptions{Seed: 7, NoOrgName: true})
	if err != nil {
		b.Fatal(err)
	}
	p := cfg.MinimalProfile()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cfg.Payoffs(p)
	}
}

func BenchmarkBestResponse(b *testing.B) {
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			cfg, err := game.DefaultConfig(game.GenOptions{Seed: 7, NoOrgName: true})
			if err != nil {
				b.Fatal(err)
			}
			p := cfg.MinimalProfile()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, ok := dbr.BestResponseWorkers(cfg, p, i%cfg.N(), 1e-7, workers); !ok {
					b.Fatal("no feasible response")
				}
			}
		})
	}
	// N=16 incremental A/B: the pooled engine's O(N) deltas against the
	// naive O(N²) reference scan on the identical (byte-for-byte) problem.
	for _, mode := range []string{"on", "off"} {
		b.Run(fmt.Sprintf("N=16/incremental=%s", mode), func(b *testing.B) {
			b.ReportAllocs()
			cfg, err := game.DefaultConfig(game.GenOptions{Seed: 7, N: 16, NoOrgName: true})
			if err != nil {
				b.Fatal(err)
			}
			p := cfg.MinimalProfile()
			scan := func(i int) bool {
				_, _, ok := dbr.BestResponseNaive(cfg, p, i, 1e-7, 1)
				return ok
			}
			if mode == "on" {
				eng := dbr.NewEngine(cfg)
				eng.Bind(p)
				scan = func(i int) bool {
					_, _, ok := eng.BestResponse(i, 1e-7, 1)
					return ok
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !scan(i % cfg.N()) {
					b.Fatal("no feasible response")
				}
			}
		})
	}
}

func BenchmarkSettlement(b *testing.B) {
	b.ReportAllocs()
	cfg, err := game.DefaultConfig(game.GenOptions{Seed: 7, NoOrgName: true})
	if err != nil {
		b.Fatal(err)
	}
	m, err := core.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := m.Run(ctx, core.Options{Settle: true})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Settlement.Verified {
			b.Fatal("settlement not verified")
		}
	}
}

// BenchmarkSchemes runs each scheme once per iteration (the building block
// of Figs. 6, 8, 9).
func BenchmarkSchemes(b *testing.B) {
	cfg, err := game.DefaultConfig(game.GenOptions{Seed: 7, NoOrgName: true})
	if err != nil {
		b.Fatal(err)
	}
	runs := map[string]func() error{
		"DBR": func() error { _, err := dbr.Solve(cfg, nil, dbr.Options{}); return err },
		"WPR": func() error { _, err := baselines.WPR(cfg, dbr.Options{}); return err },
		"GCA": func() error { _, err := baselines.GCA(cfg, baselines.GCAOptions{}); return err },
		"FIP": func() error { _, err := baselines.FIP(cfg, baselines.FIPOptions{}); return err },
		"TOS": func() error { baselines.TOS(cfg); return nil },
	}
	for name, run := range runs {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_NonIID compares FedAvg under IID shards (the paper's
// footnote-4 assumption) against Dirichlet label-skewed shards — the
// realistic cross-silo setting the assumption abstracts away.
func BenchmarkAblation_NonIID(b *testing.B) {
	spec, err := dataset.SpecByName("svhn")
	if err != nil {
		b.Fatal(err)
	}
	arch, err := model.ArchByName("mobilenet")
	if err != nil {
		b.Fatal(err)
	}
	sizes := []int{300, 300, 300, 300}
	for _, tc := range []struct {
		name  string
		alpha float64 // 0 means IID
	}{
		{"iid", 0},
		{"dirichlet-0.1", 0.1},
		{"dirichlet-1.0", 1.0},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			var acc float64
			for i := 0; i < b.N; i++ {
				gen, err := dataset.NewGenerator(spec, 7)
				if err != nil {
					b.Fatal(err)
				}
				var shards []*dataset.Dataset
				if tc.alpha == 0 {
					shards, err = gen.Partition(sizes)
				} else {
					shards, err = gen.PartitionNonIID(sizes, tc.alpha)
				}
				if err != nil {
					b.Fatal(err)
				}
				test, err := gen.Sample(1000)
				if err != nil {
					b.Fatal(err)
				}
				res, err := fl.Run(fl.Config{
					Arch:      arch,
					Shards:    shards,
					Fractions: []float64{1, 1, 1, 1},
					Rounds:    8, LocalEpochs: 2, Test: test, Seed: 7,
				})
				if err != nil {
					b.Fatal(err)
				}
				acc = res.FinalAccuracy
			}
			b.ReportMetric(acc, "final-acc")
		})
	}
}

// BenchmarkAblation_DataQuality runs DBR with heterogeneous data quality
// (footnote 3 made a parameter): low-quality organizations earn less
// redistribution credit per contributed byte and equilibrium contribution
// shifts toward high-quality data.
func BenchmarkAblation_DataQuality(b *testing.B) {
	for _, tc := range []struct {
		name    string
		quality func(i int) float64
	}{
		{"uniform-1.0", func(i int) float64 { return 1 }},
		{"half-low-0.4", func(i int) float64 {
			if i%2 == 0 {
				return 0.4
			}
			return 1
		}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			cfg, err := game.DefaultConfig(game.GenOptions{Seed: 7, NoOrgName: true})
			if err != nil {
				b.Fatal(err)
			}
			for i := range cfg.Orgs {
				cfg.Orgs[i].Quality = tc.quality(i)
			}
			var lowD, highD float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := dbr.Solve(cfg, nil, dbr.Options{})
				if err != nil {
					b.Fatal(err)
				}
				lowD, highD = 0, 0
				for k, s := range res.Profile {
					if cfg.Orgs[k].Quality != 0 && cfg.Orgs[k].Quality < 1 {
						lowD += s.D
					} else {
						highD += s.D
					}
				}
			}
			b.ReportMetric(lowD, "low-quality-data")
			b.ReportMetric(highD, "high-quality-data")
		})
	}
}

// --- Substrate microbenches ---------------------------------------------

// BenchmarkChainSettlementThroughput measures sealed transactions per
// second through a full deposit block.
func BenchmarkChainTxThroughput(b *testing.B) {
	b.ReportAllocs()
	src := randx.New(1)
	authority, err := chain.NewAccount(src)
	if err != nil {
		b.Fatal(err)
	}
	const members = 16
	accounts := make([]*chain.Account, members)
	addrs := make([]chain.Address, members)
	rho := make([][]float64, members)
	bits := make([]float64, members)
	alloc := chain.GenesisAlloc{}
	for i := range accounts {
		accounts[i], err = chain.NewAccount(src)
		if err != nil {
			b.Fatal(err)
		}
		addrs[i] = accounts[i].Address()
		rho[i] = make([]float64, members)
		bits[i] = 2e10
		alloc[addrs[i]] = 1 << 40
	}
	params := chain.ContractParams{Members: addrs, Rho: rho, DataBits: bits, Gamma: 1e-8, Lambda: 0.1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bc, err := chain.NewBlockchain(authority, params, alloc)
		if err != nil {
			b.Fatal(err)
		}
		for k, acct := range accounts {
			tx, err := chain.NewTransaction(acct, 0, chain.FnDepositSubmit, nil, chain.Wei(1000+k))
			if err != nil {
				b.Fatal(err)
			}
			if err := bc.SubmitTx(*tx); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := bc.SealBlock(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(members), "txs/block")
}

// BenchmarkTensorMatMul measures the dense kernel the FL simulator spends
// most of its time in, at two sizes and both worker settings (row-parallel
// dispatch engages above the flop threshold; results are byte-identical).
func BenchmarkTensorMatMul(b *testing.B) {
	for _, size := range []int{64, 256} {
		for _, workers := range benchWorkerCounts() {
			b.Run(fmt.Sprintf("n=%d/workers=%d", size, workers), func(b *testing.B) {
				b.ReportAllocs()
				defer tensor.SetWorkers(0)
				tensor.SetWorkers(workers)
				src := randx.New(2)
				a := tensor.New(size, size)
				c := tensor.New(size, size)
				dst := tensor.New(size, size)
				a.RandomizeXavier(src)
				c.RandomizeXavier(src)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := tensor.MatMul(dst, a, c); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkPotential measures the potential evaluation on the hot path of
// both solvers.
func BenchmarkPotential(b *testing.B) {
	b.ReportAllocs()
	cfg, err := game.DefaultConfig(game.GenOptions{Seed: 7, NoOrgName: true})
	if err != nil {
		b.Fatal(err)
	}
	p := cfg.MinimalProfile()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cfg.Potential(p)
	}
}

// BenchmarkTuneGamma measures the automated γ* search.
func BenchmarkTuneGamma(b *testing.B) {
	b.ReportAllocs()
	cfg, err := game.DefaultConfig(game.GenOptions{Seed: 7, NoOrgName: true})
	if err != nil {
		b.Fatal(err)
	}
	m, err := core.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var gamma float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := m.TuneGamma(core.TuneOptions{})
		if err != nil {
			b.Fatal(err)
		}
		gamma = res.Gamma
	}
	b.ReportMetric(gamma*1e9, "gamma*-e9")
}

// fleetBenchCorpus builds the 1024-instance mixed-N batch of the fleet
// throughput benchmark: organization counts cycle through both sides of
// the planner's solver crossovers (CGBD masters win small instances, DBR
// wins large ones), so a fixed plan is wrong for most of the batch.
func fleetBenchCorpus(b *testing.B, n int) []*game.Config {
	b.Helper()
	sizes := []int{4, 6, 8, 10, 12, 16}
	cfgs := make([]*game.Config, n)
	for i := range cfgs {
		cfg, err := game.DefaultConfig(game.GenOptions{
			N: sizes[i%len(sizes)], Seed: int64(i + 1), CPUSteps: 3, NoOrgName: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		cfgs[i] = cfg
	}
	return cfgs
}

// BenchmarkFleetSolve measures batch solving of 1024 mixed-N instances:
// the naive baseline (a sequential loop over the canonical per-instance
// CGBD solve, the pre-fleet idiom) against the fleet engine under the
// cost-based auto planner and under each fixed plan. A fresh engine per
// iteration keeps the warm result cache out of the numbers — the speedup
// shown is pure planning plus batching, not memoization. The acceptance
// floor (auto ≥ 3× naive solves/sec, auto within 10% of the best fixed
// plan) is gated by scripts/benchcmp fleet-gate in ci.sh.
func BenchmarkFleetSolve(b *testing.B) {
	const instances = 1024
	b.Run("naive-sequential", func(b *testing.B) {
		b.ReportAllocs()
		cfgs := fleetBenchCorpus(b, instances)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, cfg := range cfgs {
				if _, err := gbd.Solve(cfg, gbd.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(instances*b.N)/b.Elapsed().Seconds(), "solves/sec")
	})
	for _, plan := range []fleet.Plan{fleet.PlanAuto, fleet.PlanDBR, fleet.PlanPruned} {
		b.Run("plan="+plan.String(), func(b *testing.B) {
			b.ReportAllocs()
			cfgs := fleetBenchCorpus(b, instances)
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng := fleet.New(fleet.Options{Plan: plan})
				for _, r := range eng.Solve(ctx, cfgs) {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
			b.ReportMetric(float64(instances*b.N)/b.Elapsed().Seconds(), "solves/sec")
		})
	}
}

// BenchmarkScaling_DBR measures how Algorithm 2 scales with the number of
// organizations (Theorem 2's computational-efficiency property:
// O(T·L·N·m)).
func BenchmarkScaling_DBR(b *testing.B) {
	for _, n := range []int{5, 10, 20, 40} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			cfg, err := game.DefaultConfig(game.GenOptions{Seed: 7, N: n, NoOrgName: true})
			if err != nil {
				b.Fatal(err)
			}
			var rounds int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := dbr.Solve(cfg, nil, dbr.Options{})
				if err != nil {
					b.Fatal(err)
				}
				rounds = res.Rounds
			}
			b.ReportMetric(float64(rounds), "sweeps")
		})
	}
}
